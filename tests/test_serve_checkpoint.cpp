#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "core/edge_stream.hpp"
#include "graph/generators.hpp"
#include "serve/checkpoint.hpp"
#include "serve/session.hpp"

namespace ingrass {
namespace {

SessionOptions small_options() {
  SessionOptions opts;
  opts.engine.target_condition = 100.0;
  opts.grass.target_offtree_density = 0.20;
  opts.background_rebuild = false;
  return opts;
}

/// A session that has seen real traffic: inserts, removals, and solves.
std::unique_ptr<SparsifierSession> worked_session(const SessionOptions& opts) {
  Rng rng(11);
  Graph g = make_triangulated_grid(9, 9, rng);
  auto session = std::make_unique<SparsifierSession>(std::move(g), opts);

  EdgeStreamOptions sopts;
  sopts.iterations = 3;
  sopts.total_per_node = 0.2;
  sopts.seed = 77;
  const auto inserts = make_edge_stream(session->graph(), sopts);
  for (std::size_t b = 0; b < inserts.size(); ++b) {
    UpdateBatch batch;
    batch.inserts = inserts[b];
    if (b == 2 && !inserts[0].empty()) {
      // Remove an edge inserted in batch 0 — exercises the removal path.
      batch.removals.emplace_back(inserts[0][0].u, inserts[0][0].v);
    }
    session->apply(batch);
  }
  return session;
}

std::vector<double> unit_pair_rhs(NodeId n, NodeId u, NodeId v) {
  std::vector<double> b(static_cast<std::size_t>(n), 0.0);
  b[static_cast<std::size_t>(u)] = 1.0;
  b[static_cast<std::size_t>(v)] = -1.0;
  return b;
}

TEST(ServeCheckpoint, RoundTripPreservesGraphsExactly) {
  const auto opts = small_options();
  const auto session = worked_session(opts);
  const std::string path = testing::TempDir() + "/ingrass_ck_graphs.bin";
  session->checkpoint(path);

  const SessionCheckpoint ck = load_checkpoint(path);
  const Graph g = session->graph();
  const Graph h = session->sparsifier();
  ASSERT_EQ(ck.g.num_nodes(), g.num_nodes());
  ASSERT_EQ(ck.g.num_edges(), g.num_edges());
  ASSERT_EQ(ck.h.num_edges(), h.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(ck.g.edge(e).u, g.edge(e).u);
    EXPECT_EQ(ck.g.edge(e).v, g.edge(e).v);
    // Bit-exact: weights travel as IEEE-754 bit patterns.
    EXPECT_EQ(ck.g.edge(e).w, g.edge(e).w);
  }
  for (EdgeId e = 0; e < h.num_edges(); ++e) {
    EXPECT_EQ(ck.h.edge(e).w, h.edge(e).w);
  }
}

TEST(ServeCheckpoint, RestoredSessionMatchesMetricsAndSolves) {
  const auto opts = small_options();
  const auto session = worked_session(opts);

  // A solve before checkpointing, so the solves counter travels too.
  const Graph g = session->graph();
  const auto b = unit_pair_rhs(g.num_nodes(), 0, g.num_nodes() - 1);
  std::vector<double> x(b.size(), 0.0);
  const auto before = session->solve(b, x);
  ASSERT_TRUE(before.converged);

  const std::string path = testing::TempDir() + "/ingrass_ck_roundtrip.bin";
  session->checkpoint(path);
  const auto restored = SparsifierSession::restore(path, opts);

  const SessionMetrics a = session->metrics();
  const SessionMetrics r = restored->metrics();
  EXPECT_EQ(r.nodes, a.nodes);
  EXPECT_EQ(r.g_edges, a.g_edges);
  EXPECT_EQ(r.h_edges, a.h_edges);
  EXPECT_DOUBLE_EQ(r.staleness, a.staleness);
  EXPECT_EQ(r.counters.batches, a.counters.batches);
  EXPECT_EQ(r.counters.inserts_offered, a.counters.inserts_offered);
  EXPECT_EQ(r.counters.removals_applied, a.counters.removals_applied);
  EXPECT_EQ(r.counters.removals_pending, a.counters.removals_pending);
  EXPECT_EQ(r.counters.solves, a.counters.solves);
  EXPECT_EQ(r.counters.inserted, a.counters.inserted);
  EXPECT_EQ(r.counters.merged, a.counters.merged);
  EXPECT_EQ(r.counters.redistributed, a.counters.redistributed);
  EXPECT_EQ(r.counters.reinforced, a.counters.reinforced);
  EXPECT_DOUBLE_EQ(r.counters.staleness_score, a.counters.staleness_score);

  // Solve results agree to solver tolerance. (Not bitwise: remove_edge
  // can permute the live graph's adjacency arc order, while the restored
  // graph rebuilds arcs in edge-id order — same matrix, different
  // floating-point summation order.)
  std::vector<double> x_live(b.size(), 0.0);
  std::vector<double> x_rest(b.size(), 0.0);
  const auto live_res = session->solve(b, x_live);
  const auto rest_res = restored->solve(b, x_rest);
  EXPECT_TRUE(live_res.converged);
  EXPECT_TRUE(rest_res.converged);
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_NEAR(x_rest[i], x_live[i], 1e-6) << "component " << i;
  }
}

TEST(ServeCheckpoint, StreamRoundTripPreservesCounters) {
  SessionCheckpoint ck;
  Rng rng(5);
  ck.g = make_grid2d(4, 4, rng);
  ck.h = ck.g;
  ck.counters.batches = 7;
  ck.counters.solves = 3;
  ck.counters.rebuilds = 2;
  ck.counters.staleness_score = 1.25;
  ck.counters.lifetime_filtered_distortion = 9.5;

  std::stringstream buf;
  write_checkpoint(buf, ck);
  const SessionCheckpoint back = read_checkpoint(buf);
  EXPECT_EQ(back.counters.batches, 7u);
  EXPECT_EQ(back.counters.solves, 3u);
  EXPECT_EQ(back.counters.rebuilds, 2u);
  EXPECT_DOUBLE_EQ(back.counters.staleness_score, 1.25);
  EXPECT_DOUBLE_EQ(back.counters.lifetime_filtered_distortion, 9.5);
  EXPECT_EQ(back.g.num_edges(), ck.g.num_edges());
}

TEST(ServeCheckpoint, RejectsBadMagic) {
  std::stringstream buf;
  buf << "NOTACKPT" << std::string(64, '\0');
  EXPECT_THROW(read_checkpoint(buf), std::runtime_error);
}

TEST(ServeCheckpoint, RejectsUnknownVersion) {
  SessionCheckpoint ck;
  Rng rng(5);
  ck.g = make_grid2d(3, 3, rng);
  ck.h = ck.g;
  std::stringstream buf;
  write_checkpoint(buf, ck);
  std::string bytes = buf.str();
  bytes[8] = 99;  // version field follows the 8-byte magic
  std::stringstream bad(bytes);
  EXPECT_THROW(read_checkpoint(bad), std::runtime_error);
}

TEST(ServeCheckpoint, RejectsTruncationAndTrailingBytes) {
  SessionCheckpoint ck;
  Rng rng(5);
  ck.g = make_grid2d(3, 3, rng);
  ck.h = ck.g;
  std::stringstream buf;
  write_checkpoint(buf, ck);
  const std::string bytes = buf.str();

  std::stringstream truncated(bytes.substr(0, bytes.size() / 2));
  EXPECT_THROW(read_checkpoint(truncated), std::runtime_error);

  std::stringstream trailing(bytes + "x");
  EXPECT_THROW(read_checkpoint(trailing), std::runtime_error);
}

ShardManifest small_manifest() {
  ShardManifest m;
  m.shards = 2;
  m.num_nodes = 4;
  m.shard_of = {0, 0, 1, 1};
  m.boundary = Graph(4);
  m.boundary.add_edge(1, 2, 1.5);
  m.shard_files = {"ck.a.shard0", "ck.a.shard1"};
  return m;
}

TEST(ServeCheckpoint, ShardManifestRoundTrips) {
  const ShardManifest m = small_manifest();
  std::stringstream buf;
  write_shard_manifest(buf, m);
  const ShardManifest back = read_shard_manifest(buf);
  EXPECT_EQ(back.shards, 2);
  EXPECT_EQ(back.num_nodes, 4);
  EXPECT_EQ(back.shard_of, m.shard_of);
  EXPECT_EQ(back.boundary.num_edges(), 1);
  EXPECT_DOUBLE_EQ(back.boundary.edge(0).w, 1.5);
  EXPECT_EQ(back.shard_files, m.shard_files);
}

TEST(ServeCheckpoint, ManifestAndBlobReadersRejectEachOther) {
  std::stringstream mbuf;
  write_shard_manifest(mbuf, small_manifest());
  EXPECT_THROW(read_checkpoint(mbuf), std::runtime_error);  // v1 reader, v2 bytes

  SessionCheckpoint ck;
  Rng rng(5);
  ck.g = make_grid2d(3, 3, rng);
  ck.h = ck.g;
  std::stringstream cbuf;
  write_checkpoint(cbuf, ck);
  EXPECT_THROW(read_shard_manifest(cbuf), std::runtime_error);  // v2 reader, v1 bytes
}

DistManifest small_dist_manifest() {
  DistManifest m;
  m.base = small_manifest();
  m.generation = 17;
  m.endpoints = {"127.0.0.1:7001", "10.1.2.3:7002"};
  return m;
}

TEST(ServeCheckpoint, DistManifestRoundTrips) {
  const DistManifest m = small_dist_manifest();
  std::stringstream buf;
  write_dist_manifest(buf, m);
  const DistManifest back = read_dist_manifest(buf);
  EXPECT_EQ(back.base.shards, m.base.shards);
  EXPECT_EQ(back.base.shard_of, m.base.shard_of);
  EXPECT_EQ(back.base.shard_files, m.base.shard_files);
  EXPECT_EQ(back.base.boundary.num_edges(), 1);
  EXPECT_EQ(back.generation, 17u);
  EXPECT_EQ(back.endpoints, m.endpoints);
}

TEST(ServeCheckpoint, DistManifestAndOtherReadersRejectEachOther) {
  // v3 bytes through the v1/v2 readers and vice versa: every pairing is a
  // typed failure, never a misparse (the version field is load-bearing).
  std::stringstream dbuf;
  write_dist_manifest(dbuf, small_dist_manifest());
  EXPECT_THROW(read_shard_manifest(dbuf), std::runtime_error);
  std::stringstream dbuf2;
  write_dist_manifest(dbuf2, small_dist_manifest());
  EXPECT_THROW(read_checkpoint(dbuf2), std::runtime_error);
  std::stringstream mbuf;
  write_shard_manifest(mbuf, small_manifest());
  EXPECT_THROW(read_dist_manifest(mbuf), std::runtime_error);
}

TEST(ServeCheckpoint, DistManifestRejectsEndpointShardCountMismatch) {
  DistManifest m = small_dist_manifest();
  m.endpoints.pop_back();  // 1 endpoint for 2 shards
  std::stringstream buf;
  EXPECT_THROW(write_dist_manifest(buf, m), std::runtime_error);
}

TEST(ServeCheckpoint, ManifestRejectsPathTraversalInShardFilenames) {
  // Blob names are joined onto the manifest's directory for restore reads
  // and stale-generation deletes — separators and dot segments must be
  // rejected on both sides of the wire.
  for (const std::string evil :
       {"../../etc/passwd", "a/b", "..", ".", "c\\d", ""}) {
    ShardManifest m = small_manifest();
    m.shard_files[1] = evil;
    std::stringstream buf;
    EXPECT_THROW(write_shard_manifest(buf, m), std::runtime_error) << evil;
  }
}

TEST(ServeCheckpoint, ManifestRejectsBadShardAssignments) {
  ShardManifest m = small_manifest();
  m.shard_of[2] = 7;  // outside [0, shards)
  std::stringstream buf;
  // The writer helper validates sizes but not values, so craft the bytes
  // by patching a good serialization at the shard_of position:
  m.shard_of[2] = 1;
  write_shard_manifest(buf, m);
  std::string bytes = buf.str();
  // layout: magic(8) + version(4) + shards(4) + num_nodes(4) + shard_of[4 x i32]
  bytes[8 + 4 + 4 + 4 + 2 * 4] = 7;
  std::stringstream bad(bytes);
  EXPECT_THROW(read_shard_manifest(bad), std::runtime_error);
}

TEST(ServeCheckpoint, MissingFileThrows) {
  EXPECT_THROW(load_checkpoint("/nonexistent/dir/ck.bin"), std::runtime_error);
  SessionOptions opts = small_options();
  EXPECT_THROW(SparsifierSession::restore("/nonexistent/dir/ck.bin", opts),
               std::runtime_error);
}

}  // namespace
}  // namespace ingrass
