#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/edge_stream.hpp"
#include "core/ingrass.hpp"
#include "graph/generators.hpp"
#include "graph/mtx_io.hpp"
#include "solver/sparsifier_solver.hpp"
#include "sparsify/grass.hpp"
#include "spectral/condition_number.hpp"

namespace ingrass {
namespace {

// Robustness suite: degenerate inputs, extreme weights, and the
// convergence-rate relation that ties kappa to solver cost.

TEST(Robustness, ExtremeWeightRatiosSurviveThePipeline) {
  // 12 orders of magnitude between the lightest and heaviest edge.
  Rng rng(1);
  Graph g = make_grid2d(12, 12, rng, 1.0, 1.0);
  for (EdgeId e = 0; e < g.num_edges(); e += 7) g.set_weight(e, 1e6);
  for (EdgeId e = 3; e < g.num_edges(); e += 11) g.set_weight(e, 1e-6);
  GrassOptions gopts;
  gopts.target_offtree_density = 0.15;
  const GrassResult r = grass_sparsify(g, gopts);
  Ingrass ing{Graph(r.sparsifier)};
  EXPECT_GE(ing.num_levels(), 2);
  const double est = ing.estimate_resistance(0, g.num_nodes() - 1);
  EXPECT_TRUE(std::isfinite(est));
  EXPECT_GT(est, 0.0);
}

TEST(Robustness, TinyGraphsThroughTheFullApi) {
  // Smallest graphs that still mean something: triangle and a 2-path.
  Graph tri(3);
  tri.add_edge(0, 1, 1.0);
  tri.add_edge(1, 2, 1.0);
  tri.add_edge(0, 2, 1.0);
  Ingrass ing{Graph(tri)};
  const std::vector<Edge> batch{{0, 2, 0.5}};
  const auto stats = ing.insert_edges(batch);
  EXPECT_EQ(stats.total(), 1);

  Graph path(3);
  path.add_edge(0, 1, 2.0);
  path.add_edge(1, 2, 2.0);
  const double kappa = condition_number(path, path);
  EXPECT_NEAR(kappa, 1.0, 0.05);
}

TEST(Robustness, SolverIterationsTrackSqrtKappa) {
  // The theory the whole library serves: PCG outer iterations scale like
  // sqrt(kappa(L_G, L_H)). Compare a good sparsifier against a poor one
  // (spanning tree only) and check the iteration ratio is at least half
  // the sqrt-kappa ratio (constant factors are implementation-dependent).
  Rng rng(2);
  const Graph g = make_triangulated_grid(16, 16, rng);
  GrassOptions dense_opts;
  dense_opts.target_offtree_density = 0.30;
  GrassOptions tree_opts;
  tree_opts.target_offtree_density = 0.0;
  const Graph h_good = grass_sparsify(g, dense_opts).sparsifier;
  const Graph h_tree = grass_sparsify(g, tree_opts).sparsifier;

  const double k_good = condition_number(g, h_good);
  const double k_tree = condition_number(g, h_tree);
  ASSERT_GT(k_tree, 2.0 * k_good);

  Vec b(static_cast<std::size_t>(g.num_nodes()));
  Rng brng(3);
  randomize(b, brng);
  project_out_ones(b);

  const SparsifierSolver good(g, h_good);
  const SparsifierSolver tree(g, h_tree);
  Vec x1(b.size(), 0.0), x2(b.size(), 0.0);
  const auto rg = good.solve(b, x1);
  const auto rt = tree.solve(b, x2);
  ASSERT_TRUE(rg.converged);
  ASSERT_TRUE(rt.converged);
  EXPECT_LT(rg.outer_iterations, rt.outer_iterations);
}

TEST(Robustness, MtxWhitespaceAndCommentTolerance) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "% comment line\n"
      "%another\n"
      "3 3 2\n"
      "2 1   1.5\n"
      "\n"
      "3 1 2.5\n");
  const Graph g = read_mtx(in);
  EXPECT_EQ(g.num_edges(), 2);
}

TEST(Robustness, StreamOnDenseGraphFindsNothingGracefully) {
  // A complete graph has no non-edges: the stream generator must stop
  // without spinning and return (possibly empty) batches.
  Graph k6(6);
  for (NodeId u = 0; u < 6; ++u) {
    for (NodeId v = u + 1; v < 6; ++v) k6.add_edge(u, v, 1.0);
  }
  EdgeStreamOptions opts;
  opts.iterations = 2;
  opts.total_per_node = 1.0;
  const auto batches = make_edge_stream(k6, opts);
  EXPECT_EQ(batches.size(), 2u);
  for (const auto& b : batches) EXPECT_TRUE(b.empty());
}

TEST(Robustness, RepeatedInsertionOfSamePairMerges) {
  // The same logical connection arriving repeatedly must not balloon H.
  Rng rng(4);
  const Graph g = make_grid2d(10, 10, rng);
  GrassOptions gopts;
  Ingrass ing{grass_sparsify(g, gopts).sparsifier};
  const EdgeId before = ing.sparsifier().num_edges();
  for (int i = 0; i < 5; ++i) {
    const std::vector<Edge> batch{{0, 99, 1.0}};
    ing.insert_edges(batch);
  }
  // First insertion may add the edge; the rest must be filtered (the pair
  // now has a bridge: itself).
  EXPECT_LE(ing.sparsifier().num_edges(), before + 1);
}

}  // namespace
}  // namespace ingrass
