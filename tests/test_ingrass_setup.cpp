#include <gtest/gtest.h>

#include "core/ingrass.hpp"
#include "graph/generators.hpp"
#include "sparsify/grass.hpp"

namespace ingrass {
namespace {

Graph make_sparsifier(NodeId side, std::uint64_t seed = 1) {
  Rng rng(seed);
  const Graph g = make_triangulated_grid(side, side, rng);
  GrassOptions opts;
  opts.target_offtree_density = 0.10;
  return grass_sparsify(g, opts).sparsifier;
}

TEST(IngrassSetup, BuildsHierarchyAndFilteringLevel) {
  Ingrass::Options opts;
  opts.target_condition = 64.0;
  const Ingrass ing(make_sparsifier(12), opts);
  EXPECT_GE(ing.num_levels(), 2);
  EXPECT_GE(ing.filtering_level(), 0);
  EXPECT_LT(ing.filtering_level(), ing.num_levels());
  EXPECT_GE(ing.setup_seconds(), 0.0);
  // Default rule: the *median* cluster size at the chosen level obeys C/2.
  EXPECT_LE(
      ing.embedding().cluster_size_quantile(ing.filtering_level(), 0.5),
      static_cast<NodeId>(opts.target_condition / 2.0));
}

TEST(IngrassSetup, PaperMaxSizeRuleSelectable) {
  Ingrass::Options opts;
  opts.target_condition = 64.0;
  opts.level_size_quantile = 1.0;  // the paper's max-cluster-size rule
  const Ingrass ing(make_sparsifier(12), opts);
  EXPECT_LE(ing.embedding().max_cluster_size(ing.filtering_level()),
            static_cast<NodeId>(opts.target_condition / 2.0));
}

TEST(IngrassSetup, MedianRuleNeverShallowerThanMaxRule) {
  // Quantile 0.5 bounds a smaller statistic than quantile 1.0, so the
  // deepest level satisfying it can only be deeper or equal.
  Ingrass::Options median_opts;
  median_opts.target_condition = 40.0;
  const Ingrass median_run(make_sparsifier(10), median_opts);
  Ingrass::Options max_opts = median_opts;
  max_opts.level_size_quantile = 1.0;
  const Ingrass max_run(make_sparsifier(10), max_opts);
  EXPECT_GE(median_run.filtering_level(), max_run.filtering_level());
}

TEST(IngrassSetup, TreeBoundSharpensEstimates) {
  const Graph h = make_sparsifier(10);
  Ingrass::Options with;
  Ingrass::Options without = with;
  without.use_tree_bound = false;
  const Ingrass a{Graph(h), with};
  const Ingrass b{Graph(h), without};
  // min(tree, LRD) can never exceed the LRD-only estimate.
  for (NodeId u = 0; u < 20; ++u) {
    EXPECT_LE(a.estimate_resistance(u, 99 - u), b.estimate_resistance(u, 99 - u));
  }
}

TEST(IngrassSetup, SparsifierCopiedVerbatim) {
  const Graph h = make_sparsifier(8);
  const Ingrass ing{Graph(h)};
  EXPECT_EQ(ing.sparsifier().num_nodes(), h.num_nodes());
  EXPECT_EQ(ing.sparsifier().num_edges(), h.num_edges());
}

TEST(IngrassSetup, ResistanceEstimatesPositiveAndSymmetric) {
  const Ingrass ing(make_sparsifier(10));
  EXPECT_DOUBLE_EQ(ing.estimate_resistance(3, 3), 0.0);
  const double r = ing.estimate_resistance(0, 55);
  EXPECT_GT(r, 0.0);
  EXPECT_DOUBLE_EQ(r, ing.estimate_resistance(55, 0));
}

TEST(IngrassSetup, DistortionScalesWithWeight) {
  const Ingrass ing(make_sparsifier(10));
  Edge e1{0, 55, 1.0};
  Edge e2{0, 55, 4.0};
  EXPECT_NEAR(ing.estimate_distortion(e2), 4.0 * ing.estimate_distortion(e1), 1e-12);
}

TEST(IngrassSetup, EdgelessSparsifierRejected) {
  EXPECT_THROW(Ingrass(Graph(5)), std::invalid_argument);
}

TEST(IngrassSetup, TighterTargetShallowerLevel) {
  const Graph h = make_sparsifier(12);
  Ingrass::Options tight;
  tight.target_condition = 6.0;
  Ingrass::Options loose;
  loose.target_condition = 1e6;
  const Ingrass a{Graph(h), tight};
  const Ingrass b{Graph(h), loose};
  EXPECT_LE(a.filtering_level(), b.filtering_level());
}

TEST(IngrassSetup, ResetupRefreshesHierarchy) {
  Ingrass ing(make_sparsifier(8));
  const int levels_before = ing.num_levels();
  ing.resetup();
  EXPECT_GE(ing.num_levels(), 1);
  EXPECT_LE(std::abs(ing.num_levels() - levels_before), 3);
}

TEST(IngrassSetup, SetupTimeScalesSubquadratically) {
  // Smoke test of the O(N log N) claim: 4x the nodes should cost far less
  // than 16x the time. Generous factor to stay robust on loaded machines.
  Ingrass small(make_sparsifier(16));
  Ingrass large(make_sparsifier(32));
  if (small.setup_seconds() > 1e-4) {
    EXPECT_LT(large.setup_seconds(), 40.0 * small.setup_seconds());
  }
}

}  // namespace
}  // namespace ingrass
