#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/edge_stream.hpp"
#include "graph/generators.hpp"
#include "serve/shard_dispatcher.hpp"
#include "serve/session.hpp"

namespace ingrass {
namespace {

Graph test_graph(int side = 12, std::uint64_t seed = 7) {
  Rng rng(seed);
  return make_triangulated_grid(static_cast<NodeId>(side), static_cast<NodeId>(side), rng);
}

ShardedOptions sharded_options(double budget = 80.0) {
  ShardedOptions opts;
  opts.session.engine.target_condition = budget;
  opts.session.grass.target_offtree_density = 0.20;
  opts.session.background_rebuild = false;  // deterministic tests
  return opts;
}

/// b = e_u - e_v; returns x[u] - x[v] (the effective resistance).
double solve_pair(ShardedSession& s, NodeId u, NodeId v,
                  SparsifierSolver::Result* out = nullptr) {
  const auto n = static_cast<std::size_t>(s.metrics().nodes);
  std::vector<double> b(n, 0.0), x(n, 0.0);
  b[static_cast<std::size_t>(u)] = 1.0;
  b[static_cast<std::size_t>(v)] = -1.0;
  const auto r = s.solve(b, x);
  if (out) *out = r;
  return x[static_cast<std::size_t>(u)] - x[static_cast<std::size_t>(v)];
}

/// First (u, v) with u's shard != v's shard.
std::pair<NodeId, NodeId> cross_shard_pair(const ShardedSession& s) {
  const NodeId n = s.metrics().nodes;
  for (NodeId u = 0; u < n; ++u) {
    if (s.shard_of(u) != s.shard_of(0)) return {NodeId{0}, u};
  }
  throw std::logic_error("no cross-shard pair");
}

/// First (u, v) edge-free pair sharing a shard with u.
std::pair<NodeId, NodeId> intra_shard_pair(const ShardedSession& s, const Graph& g) {
  const NodeId n = s.metrics().nodes;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = static_cast<NodeId>(u + 1); v < n; ++v) {
      if (s.shard_of(u) == s.shard_of(v) && !g.has_edge(u, v)) return {u, v};
    }
  }
  throw std::logic_error("no intra-shard pair");
}

TEST(ShardDispatcher, PartitionsAndReportsShards) {
  ShardedSession s(test_graph(), 4, sharded_options());
  const ShardedMetrics m = s.metrics();
  EXPECT_EQ(m.shards, 4);
  EXPECT_EQ(m.nodes, 144);
  ASSERT_EQ(m.per_shard.size(), 4u);
  NodeId real_nodes = 0;
  for (const SessionMetrics& sm : m.per_shard) {
    real_nodes += sm.nodes - 1;  // minus each shard's ground node
    EXPECT_GT(sm.h_edges, 0);
  }
  EXPECT_EQ(real_nodes, 144);
  EXPECT_GT(m.boundary_edges, 0);
  EXPECT_GT(m.boundary_weight, 0.0);
  // Intra-shard + cut edges partition the global edge set.
  const Graph g = s.graph();
  EXPECT_EQ(m.g_edges, g.num_edges());
}

TEST(ShardDispatcher, ShardedSolveMatchesUnshardedToSameTolerance) {
  const Graph g0 = test_graph();
  ShardedOptions opts = sharded_options();
  ShardedSession sharded(Graph(g0), 4, opts);
  SparsifierSession plain(Graph(g0), opts.session);

  const auto n = static_cast<std::size_t>(g0.num_nodes());
  std::vector<double> b(n, 0.0);
  b[0] = 1.0;
  b[n - 1] = -1.0;
  std::vector<double> xs(n, 0.0), xp(n, 0.0);

  SparsifierSolver::Result rs = sharded.solve(b, xs);
  const SparsifierSolver::Result rp = plain.solve(b, xp);
  ASSERT_TRUE(rp.converged);
  ASSERT_TRUE(rs.converged);
  // The acceptance bar: the sharded path meets the *same* tolerance.
  EXPECT_LE(rs.relative_residual, opts.session.solver.outer_tol);
  // Both solved the same SPD system — the solutions agree (up to the
  // shared nullspace, which both project out).
  const double want = xp[0] - xp[n - 1];
  const double got = xs[0] - xs[n - 1];
  EXPECT_NEAR(got, want, 1e-5 * std::abs(want));
}

TEST(ShardDispatcher, CrossShardInsertRoutesThroughBoundary) {
  ShardedSession s(test_graph(), 4, sharded_options());
  const ShardedMetrics before = s.metrics();
  const auto [u, v] = cross_shard_pair(s);

  UpdateBatch batch;
  batch.inserts.push_back(Edge{u, v, 2.0});
  const ApplyResult r = s.apply(batch);
  EXPECT_EQ(r.stats.total() + r.removed, 0);  // no shard saw the record itself

  const ShardedMetrics after = s.metrics();
  EXPECT_EQ(after.boundary_edges, before.boundary_edges + 1);
  EXPECT_DOUBLE_EQ(after.boundary_weight, before.boundary_weight + 2.0);
  EXPECT_EQ(after.coupling_updates, before.coupling_updates + 2);  // both endpoints
  EXPECT_TRUE(s.graph().has_edge(u, v));
  // The stitched global sparsifier carries every cut edge exactly.
  EXPECT_TRUE(s.sparsifier().has_edge(u, v));

  // ... and removing it restores the boundary.
  UpdateBatch removal;
  removal.removals.emplace_back(u, v);
  const ApplyResult rr = s.apply(removal);
  EXPECT_EQ(rr.removed, 1);
  const ShardedMetrics final_m = s.metrics();
  EXPECT_EQ(final_m.boundary_edges, before.boundary_edges);
  EXPECT_FALSE(s.graph().has_edge(u, v));
}

TEST(ShardDispatcher, IntraShardRecordsRouteToOwningShard) {
  const Graph g0 = test_graph();
  ShardedSession s(Graph(g0), 4, sharded_options());
  const auto [u, v] = intra_shard_pair(s, g0);
  const int owner = s.shard_of(u);

  std::vector<std::uint64_t> offered_before(4);
  for (int k = 0; k < 4; ++k) {
    offered_before[static_cast<std::size_t>(k)] =
        s.shard_metrics(k).counters.inserts_offered;
  }
  UpdateBatch batch;
  batch.inserts.push_back(Edge{u, v, 1.5});
  s.apply(batch);
  for (int k = 0; k < 4; ++k) {
    const std::uint64_t now = s.shard_metrics(k).counters.inserts_offered;
    EXPECT_EQ(now, offered_before[static_cast<std::size_t>(k)] + (k == owner ? 1 : 0));
  }
  EXPECT_TRUE(s.graph().has_edge(u, v));
  // Removing it again routes the removal the same way.
  UpdateBatch removal;
  removal.removals.emplace_back(u, v);
  const ApplyResult r = s.apply(removal);
  EXPECT_EQ(r.removed, 1);
  EXPECT_FALSE(s.graph().has_edge(u, v));
}

TEST(ShardDispatcher, MixedTrafficKeepsSolvesConverged) {
  const Graph g0 = test_graph();
  ShardedOptions opts = sharded_options(/*budget=*/60.0);
  opts.session.grass.target_condition = 30.0;  // budget-guaranteed rebuilds
  ShardedSession s(Graph(g0), 3, opts);

  EdgeStreamOptions sopts;
  sopts.iterations = 5;
  sopts.total_per_node = 0.4;
  sopts.seed = 17;
  const auto inserts = make_edge_stream(g0, sopts);
  for (std::size_t bi = 0; bi < inserts.size(); ++bi) {
    UpdateBatch batch;
    batch.inserts = inserts[bi];
    if (bi >= 2) {  // remove some of what landed two batches earlier
      const auto& old = inserts[bi - 2];
      for (std::size_t i = 0; i < old.size(); i += 3) {
        batch.removals.emplace_back(old[i].u, old[i].v);
      }
    }
    s.apply(batch);
  }
  const ShardedMetrics m = s.metrics();
  EXPECT_GT(m.counters.inserts_offered, 0u);  // intra-shard traffic landed
  EXPECT_GT(m.coupling_updates, 0u);          // so did cross-shard traffic

  SparsifierSolver::Result r;
  solve_pair(s, 0, s.metrics().nodes - 1, &r);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.relative_residual, opts.session.solver.outer_tol);
}

TEST(ShardDispatcher, ShardedCheckpointRoundTripRestoresIdenticalMetrics) {
  const Graph g0 = test_graph();
  ShardedOptions opts = sharded_options();
  ShardedSession s(Graph(g0), 3, opts);

  // Some traffic, including cross-shard records.
  const auto [cu, cv] = cross_shard_pair(s);
  UpdateBatch batch;
  batch.inserts.push_back(Edge{cu, cv, 1.25});
  const auto [iu, iv] = intra_shard_pair(s, g0);
  batch.inserts.push_back(Edge{iu, iv, 0.75});
  s.apply(batch);

  const std::string path = testing::TempDir() + "sharded_ckpt.bin";
  s.checkpoint(path);
  // Re-checkpointing the same path must GC the superseded blob
  // generation and stay restorable.
  const std::vector<std::string> first_gen = load_shard_manifest(path).shard_files;
  s.checkpoint(path);
  for (const std::string& name : first_gen) {
    EXPECT_FALSE(std::ifstream(testing::TempDir() + name).good())
        << "stale blob survived: " << name;
  }
  const auto restored = ShardedSession::restore(path, opts);

  const ShardedMetrics a = s.metrics();
  const ShardedMetrics b = restored->metrics();
  EXPECT_EQ(a.shards, b.shards);
  EXPECT_EQ(a.nodes, b.nodes);
  EXPECT_EQ(a.g_edges, b.g_edges);
  EXPECT_EQ(a.boundary_edges, b.boundary_edges);
  EXPECT_DOUBLE_EQ(a.boundary_weight, b.boundary_weight);
  EXPECT_EQ(a.h_edges, b.h_edges);
  EXPECT_EQ(a.counters.batches, b.counters.batches);
  EXPECT_EQ(a.counters.inserts_offered, b.counters.inserts_offered);
  EXPECT_EQ(a.counters.removals_pending, b.counters.removals_pending);
  ASSERT_EQ(b.per_shard.size(), a.per_shard.size());
  for (std::size_t k = 0; k < a.per_shard.size(); ++k) {
    EXPECT_EQ(a.per_shard[k].nodes, b.per_shard[k].nodes);
    EXPECT_EQ(a.per_shard[k].g_edges, b.per_shard[k].g_edges);
    EXPECT_EQ(a.per_shard[k].h_edges, b.per_shard[k].h_edges);
  }

  // The restored dispatcher serves the same answers.
  const double want = solve_pair(s, cu, cv);
  const double got = solve_pair(*restored, cu, cv);
  EXPECT_NEAR(got, want, 1e-5 * std::abs(want));

  for (const std::string& name : load_shard_manifest(path).shard_files) {
    std::remove((testing::TempDir() + name).c_str());
  }
  std::remove(path.c_str());
}

TEST(ShardDispatcher, SingleShardDegeneratesToPlainSession) {
  const Graph g0 = test_graph(8);
  ShardedOptions opts = sharded_options();
  ShardedSession s(Graph(g0), 1, opts);
  const ShardedMetrics m = s.metrics();
  EXPECT_EQ(m.shards, 1);
  EXPECT_EQ(m.nodes, g0.num_nodes());  // no ground node
  EXPECT_EQ(m.boundary_edges, 0);

  SparsifierSession plain(Graph(g0), opts.session);
  const auto n = static_cast<std::size_t>(g0.num_nodes());
  std::vector<double> b(n, 0.0), xs(n, 0.0), xp(n, 0.0);
  b[0] = 1.0;
  b[5] = -1.0;
  ASSERT_TRUE(s.solve(b, xs).converged);
  ASSERT_TRUE(plain.solve(b, xp).converged);
  EXPECT_NEAR(xs[0] - xs[5], xp[0] - xp[5], 1e-7);
}

TEST(ShardDispatcher, HashPartitionWorksToo) {
  ShardedOptions opts = sharded_options();
  opts.partition = PartitionStrategy::kHash;
  ShardedSession s(test_graph(10), 4, opts);
  SparsifierSolver::Result r;
  solve_pair(s, 3, 90, &r);
  EXPECT_TRUE(r.converged);
}

TEST(ShardDispatcher, BackgroundRebuildsAcrossShards) {
  const Graph g0 = test_graph();
  ShardedOptions opts = sharded_options(/*budget=*/40.0);
  opts.session.background_rebuild = true;
  opts.session.rebuild_staleness_fraction = 0.2;
  ShardedSession s(Graph(g0), 3, opts);

  EdgeStreamOptions sopts;
  sopts.iterations = 4;
  sopts.total_per_node = 0.5;
  sopts.global_weight_factor = 12.0;  // heavy long-range edges: high distortion
  sopts.seed = 23;
  const auto inserts = make_edge_stream(g0, sopts);
  for (const auto& ins : inserts) {
    UpdateBatch batch;
    batch.inserts = ins;
    s.apply(batch);
  }
  s.wait_for_rebuilds();
  const ShardedMetrics m = s.metrics();
  EXPECT_FALSE(m.rebuild_in_flight);
  SparsifierSolver::Result r;
  solve_pair(s, 0, 143, &r);
  EXPECT_TRUE(r.converged);
}

TEST(ShardDispatcher, RejectsBadConstruction) {
  const Graph g0 = test_graph(6);
  EXPECT_THROW(ShardedSession(Graph(g0), 0, sharded_options()), std::invalid_argument);
  EXPECT_THROW(ShardedSession(Graph(g0), 100, sharded_options()),
               std::invalid_argument);
  Graph disconnected(4);
  disconnected.add_edge(0, 1, 1.0);
  disconnected.add_edge(2, 3, 1.0);
  EXPECT_THROW(ShardedSession(std::move(disconnected), 2, sharded_options()),
               std::invalid_argument);
}

TEST(ShardDispatcher, RejectsBadBatches) {
  ShardedSession s(test_graph(8), 2, sharded_options());
  UpdateBatch self_loop;
  self_loop.inserts.push_back(Edge{3, 3, 1.0});
  EXPECT_THROW(s.apply(self_loop), std::invalid_argument);
  UpdateBatch out_of_range;
  out_of_range.removals.emplace_back(0, 1000);
  EXPECT_THROW(s.apply(out_of_range), std::invalid_argument);
  UpdateBatch bad_weight;
  bad_weight.inserts.push_back(Edge{0, 1, -1.0});
  EXPECT_THROW(s.apply(bad_weight), std::invalid_argument);
}

}  // namespace
}  // namespace ingrass
