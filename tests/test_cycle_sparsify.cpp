#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "sparsify/cycle_sparsify.hpp"
#include "sparsify/density.hpp"
#include "spectral/condition_number.hpp"
#include "tree/spanning_tree.hpp"

namespace ingrass {
namespace {

Graph mesh(NodeId side, std::uint64_t seed = 4) {
  Rng rng(seed);
  return make_triangulated_grid(side, side, rng);
}

TEST(CycleSparsify, FundamentalCycleLengthsOnAKnownGraph) {
  // Path 0-1-2-3 plus chord (0,3): the chord closes a 4-hop cycle.
  // Heavy path edges guarantee they form the max-weight tree.
  Graph g(4);
  g.add_edge(0, 1, 10.0);
  g.add_edge(1, 2, 10.0);
  g.add_edge(2, 3, 10.0);
  g.add_edge(0, 3, 1.0);
  const auto tree = max_weight_spanning_forest(g);
  const TreeSplit split = split_by_forest(g, tree);
  ASSERT_EQ(split.off_tree.size(), 1u);
  const auto lens = fundamental_cycle_lengths(g, tree, split.off_tree);
  EXPECT_EQ(lens[0], 4);
}

TEST(CycleSparsify, TriangleChordHasThreeHopCycle) {
  Graph g(3);
  g.add_edge(0, 1, 10.0);
  g.add_edge(1, 2, 10.0);
  g.add_edge(0, 2, 1.0);
  const auto tree = max_weight_spanning_forest(g);
  const TreeSplit split = split_by_forest(g, tree);
  const auto lens = fundamental_cycle_lengths(g, tree, split.off_tree);
  ASSERT_EQ(lens.size(), 1u);
  EXPECT_EQ(lens[0], 3);
}

TEST(CycleSparsify, OutputConnectedAndDensityObeysContract) {
  const Graph g = mesh(14);
  CycleSparsifyOptions opts;
  opts.target_offtree_density = 0.10;
  const CycleSparsifyResult r = cycle_sparsify(g, opts);
  EXPECT_TRUE(is_connected(r.sparsifier));
  EXPECT_EQ(r.tree_edges, g.num_nodes() - 1);
  // Contract: achieved density ~ max(budget, long-cycle floor), and never
  // below the requested budget by more than sampling noise.
  const double floor_density = static_cast<double>(r.kept_long) /
                               static_cast<double>(g.num_nodes());
  const double expected = std::max(0.10, floor_density);
  EXPECT_NEAR(offtree_density(r.sparsifier), expected, 0.05);
}

TEST(CycleSparsify, GenerousThresholdMeetsBudgetExactly) {
  // When every cycle counts as short there is no floor and the sampler
  // should land on the requested budget in expectation.
  const Graph g = mesh(14);
  CycleSparsifyOptions opts;
  opts.target_offtree_density = 0.10;
  opts.short_cycle_max_hops = 10000;
  const CycleSparsifyResult r = cycle_sparsify(g, opts);
  EXPECT_EQ(r.kept_long, 0);
  EXPECT_NEAR(offtree_density(r.sparsifier), 0.10, 0.05);
}

TEST(CycleSparsify, AccountingAddsUp) {
  const Graph g = mesh(12);
  const CycleSparsifyResult r = cycle_sparsify(g);
  const EdgeId off_tree_total = g.num_edges() - r.tree_edges;
  EXPECT_EQ(r.kept_long + r.kept_short_sampled + r.dropped_short, off_tree_total);
  EXPECT_EQ(r.sparsifier.num_edges(), r.tree_edges + r.kept_long + r.kept_short_sampled);
  EXPECT_GE(r.keep_probability, 0.0);
  EXPECT_LE(r.keep_probability, 1.0);
}

TEST(CycleSparsify, TotalWeightConservedExactly) {
  // Dropped short-cycle edges fold their weight onto a tree edge of their
  // cycle, so the output's total weight equals the input's, every run.
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const Graph g = mesh(10, seed);
    CycleSparsifyOptions opts;
    opts.seed = seed * 31;
    const CycleSparsifyResult r = cycle_sparsify(g, opts);
    EXPECT_NEAR(r.sparsifier.total_weight(), g.total_weight(),
                1e-9 * g.total_weight());
  }
}

TEST(CycleSparsify, FoldedWeightAccountedFor) {
  const Graph g = mesh(12, 7);
  const CycleSparsifyResult r = cycle_sparsify(g);
  if (r.dropped_short == 0) GTEST_SKIP() << "nothing dropped at this density";
  EXPECT_GT(r.folded_weight, 0.0);
  // Folded weight shows up as tree-edge weight above the original.
  double surplus = 0.0;
  for (EdgeId e = 0; e < r.tree_edges; ++e) {
    const Edge& se = r.sparsifier.edge(e);
    const EdgeId orig = g.find_edge(se.u, se.v);
    ASSERT_NE(orig, kInvalidEdge);
    surplus += se.w - g.edge(orig).w;
  }
  EXPECT_NEAR(surplus, r.folded_weight, 1e-9 * r.folded_weight);
}

TEST(CycleSparsify, LongCycleEdgesAlwaysKept) {
  // A ring has one off-tree edge closing an N-hop cycle — always kept even
  // at zero density budget.
  Graph g(20);
  for (NodeId v = 0; v < 20; ++v) g.add_edge(v, (v + 1) % 20, 1.0);
  CycleSparsifyOptions opts;
  opts.target_offtree_density = 0.0;
  opts.short_cycle_max_hops = 8;
  const CycleSparsifyResult r = cycle_sparsify(g, opts);
  EXPECT_EQ(r.kept_long, 1);
  EXPECT_TRUE(is_connected(r.sparsifier));
}

TEST(CycleSparsify, ShorterThresholdKeepsMoreEdges) {
  const Graph g = mesh(12, 9);
  CycleSparsifyOptions tight;
  tight.short_cycle_max_hops = 3;  // only triangles count as short
  tight.target_offtree_density = 0.05;
  CycleSparsifyOptions loose = tight;
  loose.short_cycle_max_hops = 40;  // nearly everything is short
  const auto r_tight = cycle_sparsify(g, tight);
  const auto r_loose = cycle_sparsify(g, loose);
  EXPECT_GE(r_tight.sparsifier.num_edges(), r_loose.sparsifier.num_edges());
}

TEST(CycleSparsify, RejectsBadInputs) {
  Graph disconnected(4);
  disconnected.add_edge(0, 1, 1.0);
  disconnected.add_edge(2, 3, 1.0);
  EXPECT_THROW(cycle_sparsify(disconnected), std::invalid_argument);

  const Graph g = mesh(6);
  CycleSparsifyOptions opts;
  opts.short_cycle_max_hops = 2;
  EXPECT_THROW(cycle_sparsify(g, opts), std::invalid_argument);
}

TEST(CycleSparsify, SpectralQualityBoundedOnMesh) {
  // Lemma 2.1's promise in practice: the sampled sparsifier approximates
  // the quadratic form — kappa stays moderate at 10% density on a mesh.
  const Graph g = mesh(16);
  const CycleSparsifyResult r = cycle_sparsify(g);
  const double kappa = condition_number(g, r.sparsifier);
  EXPECT_GE(kappa, 1.0);
  EXPECT_LT(kappa, 2000.0);
}

TEST(CycleSparsify, DeterministicForSeed) {
  const Graph g = mesh(10);
  CycleSparsifyOptions opts;
  opts.seed = 77;
  const auto a = cycle_sparsify(g, opts);
  const auto b = cycle_sparsify(g, opts);
  ASSERT_EQ(a.sparsifier.num_edges(), b.sparsifier.num_edges());
  EXPECT_EQ(a.kept_short_sampled, b.kept_short_sampled);
}

}  // namespace
}  // namespace ingrass
