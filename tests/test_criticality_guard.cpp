#include <gtest/gtest.h>

#include <cmath>

#include "core/ingrass.hpp"
#include "graph/generators.hpp"
#include "sparsify/grass.hpp"
#include "spectral/condition_number.hpp"

namespace ingrass {
namespace {

/// Property suite for the update phase's criticality guard (DESIGN.md
/// §7.7): an edge whose spectral distortion already exceeds the target
/// condition number must be inserted regardless of structural redundancy,
/// because excluding it forces kappa >= 1 + w * R_H(u,v).

struct GuardCase {
  const char* name;
  Graph (*make)(std::uint64_t);
};

Graph make_mesh(std::uint64_t seed) {
  Rng rng(seed);
  return make_triangulated_grid(14, 14, rng);
}
Graph make_pgrid(std::uint64_t seed) {
  Rng rng(seed);
  return make_power_grid(12, 12, 2, rng);
}
Graph make_lattice(std::uint64_t seed) {
  Rng rng(seed);
  return make_grid2d(16, 12, rng);
}

class CriticalityGuard : public testing::TestWithParam<GuardCase> {};

TEST_P(CriticalityGuard, HeavyLongRangeEdgeAlwaysInserted) {
  // A very heavy edge between far-apart nodes has distortion far above any
  // reasonable target; whatever clusters/bridges exist, it must land in H.
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const Graph g = GetParam().make(seed);
    GrassOptions gopts;
    gopts.target_offtree_density = 0.10;
    Graph h0 = grass_sparsify(g, gopts).sparsifier;

    Ingrass::Options opts;
    opts.target_condition = 30.0;
    Ingrass ing(std::move(h0), opts);

    // Far apart: first and last node of a lattice-like generator.
    const NodeId u = 0;
    const NodeId v = g.num_nodes() - 1;
    const double w = 1e4;
    ASSERT_GT(ing.estimate_distortion(Edge{u, v, w}), opts.target_condition);
    const auto stats = ing.insert_edges(std::vector<Edge>{Edge{u, v, w}});
    EXPECT_EQ(stats.inserted, 1) << GetParam().name << " seed " << seed;
    EXPECT_TRUE(ing.sparsifier().has_edge(u, v));
  }
}

TEST_P(CriticalityGuard, DisabledGuardCanFilterTheSameEdge) {
  // With the guard off and a coarse filtering level, the same heavy edge
  // can be structurally filtered — showing the guard is what saves it.
  const Graph g = GetParam().make(7);
  GrassOptions gopts;
  gopts.target_offtree_density = 0.10;
  const Graph h0 = grass_sparsify(g, gopts).sparsifier;

  Ingrass::Options guarded;
  guarded.target_condition = 30.0;
  Ingrass::Options unguarded = guarded;
  unguarded.critical_distortion_factor = 0.0;
  unguarded.merge_weight_ratio = 0.0;  // isolate: dominance guard off too
  // Force the coarsest level: everything shares one cluster -> everything
  // is structurally redundant.
  Ingrass a{Graph(h0), guarded};
  unguarded.filtering_level_override = a.num_levels() - 1;
  guarded.filtering_level_override = a.num_levels() - 1;
  Ingrass b{Graph(h0), guarded};
  Ingrass c{Graph(h0), unguarded};

  const std::vector<Edge> batch{Edge{0, g.num_nodes() - 1, 1e4}};
  EXPECT_EQ(b.insert_edges(batch).inserted, 1);   // guard fires
  EXPECT_EQ(c.insert_edges(batch).inserted, 0);   // filtered away
}

TEST_P(CriticalityGuard, GuardBoundsKappaUnderAdversarialStream) {
  // Adversarial stream: a handful of heavy random long-range edges per
  // batch. kappa with the guard must stay within a modest multiple of the
  // target even at the coarsest filtering level.
  const Graph g0 = GetParam().make(11);
  GrassOptions gopts;
  gopts.target_offtree_density = 0.10;
  const Graph h0 = grass_sparsify(g0, gopts).sparsifier;
  const double kappa0 = condition_number(g0, h0);

  Ingrass::Options opts;
  opts.target_condition = kappa0;
  Ingrass ing{Graph(h0), opts};

  Graph g = g0;
  Rng rng(23);
  for (int batch_no = 0; batch_no < 5; ++batch_no) {
    std::vector<Edge> batch;
    for (int i = 0; i < 6; ++i) {
      const auto u = static_cast<NodeId>(rng.uniform_index(g.num_nodes()));
      const auto v = static_cast<NodeId>(rng.uniform_index(g.num_nodes()));
      if (u == v || g.has_edge(u, v)) continue;
      batch.push_back(Edge{std::min(u, v), std::max(u, v), 50.0});
    }
    for (const Edge& e : batch) g.add_or_merge_edge(e.u, e.v, e.w);
    ing.insert_edges(batch);
  }
  const double kappa = condition_number(g, ing.sparsifier());
  EXPECT_LT(kappa, 3.0 * kappa0) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(Topologies, CriticalityGuard,
                         testing::Values(GuardCase{"mesh", make_mesh},
                                         GuardCase{"power_grid", make_pgrid},
                                         GuardCase{"lattice", make_lattice}),
                         [](const testing::TestParamInfo<GuardCase>& info) {
                           return info.param.name;
                         });

TEST(CriticalityGuardUnits, ThresholdScalesWithFactor) {
  Rng rng(5);
  const Graph g = make_triangulated_grid(10, 10, rng);
  GrassOptions gopts;
  gopts.target_offtree_density = 0.10;
  const Graph h0 = grass_sparsify(g, gopts).sparsifier;

  // Pick an edge whose distortion sits between 1x and 8x the target:
  // inserted under factor 1, filterable under factor 8.
  Ingrass::Options probe_opts;
  probe_opts.target_condition = 20.0;
  Ingrass probe{Graph(h0), probe_opts};
  const Edge far{0, g.num_nodes() - 1,
                 30.0 / probe.estimate_resistance(0, g.num_nodes() - 1)};
  const double d = probe.estimate_distortion(far);
  ASSERT_GT(d, probe_opts.target_condition);
  ASSERT_LT(d, 8.0 * probe_opts.target_condition);

  Ingrass::Options loose = probe_opts;
  loose.critical_distortion_factor = 8.0;
  loose.filtering_level_override = probe.num_levels() - 1;  // all-redundant
  Ingrass relaxed{Graph(h0), loose};
  EXPECT_EQ(relaxed.insert_edges(std::vector<Edge>{far}).inserted, 0);

  Ingrass::Options tight = loose;
  tight.critical_distortion_factor = 1.0;
  Ingrass strict{Graph(h0), tight};
  EXPECT_EQ(strict.insert_edges(std::vector<Edge>{far}).inserted, 1);
}

}  // namespace
}  // namespace ingrass
