#include <gtest/gtest.h>

#include <unordered_set>

#include "core/edge_stream.hpp"
#include "graph/generators.hpp"

namespace ingrass {
namespace {

TEST(EdgeStream, BatchCountAndTotalSize) {
  Rng rng(1);
  const Graph g = make_triangulated_grid(12, 12, rng);
  EdgeStreamOptions opts;
  opts.iterations = 10;
  opts.total_per_node = 0.24;
  const auto batches = make_edge_stream(g, opts);
  EXPECT_EQ(batches.size(), 10u);
  std::size_t total = 0;
  for (const auto& b : batches) total += b.size();
  const auto expected = static_cast<std::size_t>(0.24 * g.num_nodes());
  EXPECT_NEAR(static_cast<double>(total), static_cast<double>(expected),
              0.05 * expected + 2.0);
}

TEST(EdgeStream, NoDuplicatesOrExistingEdges) {
  Rng rng(2);
  const Graph g = make_triangulated_grid(10, 10, rng);
  const auto batches = make_edge_stream(g);
  std::unordered_set<std::uint64_t> seen;
  for (const auto& b : batches) {
    for (const Edge& e : b) {
      EXPECT_NE(e.u, e.v);
      EXPECT_FALSE(g.has_edge(e.u, e.v)) << e.u << "," << e.v;
      const auto key = (static_cast<std::uint64_t>(e.u) << 32) |
                       static_cast<std::uint64_t>(e.v);
      EXPECT_TRUE(seen.insert(key).second) << "duplicate " << e.u << "," << e.v;
    }
  }
}

TEST(EdgeStream, WeightsDrawnFromExistingDistribution) {
  Rng rng(3);
  const Graph g = make_grid2d(10, 10, rng, 2.0, 3.0);
  EdgeStreamOptions opts;
  opts.global_weight_factor = 1.0;
  const auto batches = make_edge_stream(g, opts);
  for (const auto& b : batches) {
    for (const Edge& e : b) {
      EXPECT_GE(e.w, 2.0);
      EXPECT_LT(e.w, 3.0);
    }
  }
}

TEST(EdgeStream, GlobalEdgesCarryWeightFactor) {
  Rng rng(3);
  const Graph g = make_grid2d(12, 12, rng, 2.0, 3.0);
  EdgeStreamOptions opts;
  opts.global_weight_factor = 8.0;
  opts.locality_fraction = 0.5;
  const auto batches = make_edge_stream(g, opts);
  int light = 0, heavy = 0;
  for (const auto& b : batches) {
    for (const Edge& e : b) {
      if (e.w < 3.0) {
        EXPECT_GE(e.w, 2.0);
        ++light;
      } else {
        EXPECT_GE(e.w, 16.0);
        EXPECT_LT(e.w, 24.0);
        ++heavy;
      }
    }
  }
  EXPECT_GT(light, 0);
  EXPECT_GT(heavy, 0);
}

TEST(EdgeStream, EndpointsNormalized) {
  Rng rng(4);
  const Graph g = make_triangulated_grid(8, 8, rng);
  for (const auto& b : make_edge_stream(g)) {
    for (const Edge& e : b) {
      EXPECT_LT(e.u, e.v);
      EXPECT_GE(e.u, 0);
      EXPECT_LT(e.v, g.num_nodes());
    }
  }
}

TEST(EdgeStream, DeterministicForSeed) {
  Rng rng(5);
  const Graph g = make_triangulated_grid(8, 8, rng);
  EdgeStreamOptions opts;
  opts.seed = 77;
  const auto a = make_edge_stream(g, opts);
  const auto b = make_edge_stream(g, opts);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].size(), b[i].size());
    for (std::size_t j = 0; j < a[i].size(); ++j) {
      EXPECT_EQ(a[i][j].u, b[i][j].u);
      EXPECT_EQ(a[i][j].v, b[i][j].v);
      EXPECT_DOUBLE_EQ(a[i][j].w, b[i][j].w);
    }
  }
}

TEST(EdgeStream, LocalityZeroGivesLongRangePairs) {
  Rng rng(6);
  const Graph g = make_grid2d(20, 20, rng);
  EdgeStreamOptions opts;
  opts.locality_fraction = 0.0;
  opts.total_per_node = 0.1;
  const auto batches = make_edge_stream(g, opts);
  // With purely random pairs on a 20x20 grid, mean manhattan distance
  // between endpoints should be far above 2.
  double mean_dist = 0.0;
  int count = 0;
  for (const auto& b : batches) {
    for (const Edge& e : b) {
      const int x1 = e.u % 20, y1 = e.u / 20;
      const int x2 = e.v % 20, y2 = e.v / 20;
      mean_dist += std::abs(x1 - x2) + std::abs(y1 - y2);
      ++count;
    }
  }
  ASSERT_GT(count, 10);
  EXPECT_GT(mean_dist / count, 5.0);
}

TEST(EdgeStream, LocalityOneGivesShortPairs) {
  Rng rng(7);
  const Graph g = make_grid2d(20, 20, rng);
  EdgeStreamOptions opts;
  opts.locality_fraction = 1.0;
  opts.local_hops = 2;
  opts.total_per_node = 0.1;
  const auto batches = make_edge_stream(g, opts);
  double mean_dist = 0.0;
  int count = 0;
  for (const auto& b : batches) {
    for (const Edge& e : b) {
      const int x1 = e.u % 20, y1 = e.u / 20;
      const int x2 = e.v % 20, y2 = e.v / 20;
      mean_dist += std::abs(x1 - x2) + std::abs(y1 - y2);
      ++count;
    }
  }
  ASSERT_GT(count, 10);
  EXPECT_LE(mean_dist / count, 2.01);  // 2-hop walks on a grid
}

TEST(EdgeStream, ValidationErrors) {
  Rng rng(8);
  const Graph g = make_grid2d(5, 5, rng);
  EdgeStreamOptions opts;
  opts.iterations = 0;
  EXPECT_THROW(make_edge_stream(g, opts), std::invalid_argument);
  const Graph tiny(2);
  EXPECT_THROW(make_edge_stream(tiny, {}), std::invalid_argument);
}

}  // namespace
}  // namespace ingrass
