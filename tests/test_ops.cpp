#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/ops.hpp"

namespace ingrass {
namespace {

TEST(Ops, SubgraphKeepsSelectedEdges) {
  Graph g(4);
  const EdgeId a = g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  const EdgeId c = g.add_edge(2, 3, 3.0);
  const Graph sub = subgraph(g, {a, c});
  EXPECT_EQ(sub.num_nodes(), 4);
  EXPECT_EQ(sub.num_edges(), 2);
  EXPECT_TRUE(sub.has_edge(0, 1));
  EXPECT_TRUE(sub.has_edge(2, 3));
  EXPECT_FALSE(sub.has_edge(1, 2));
}

TEST(Ops, ScaledCopyMultipliesWeights) {
  Graph g(2);
  g.add_edge(0, 1, 2.0);
  const Graph s = scaled_copy(g, 2.5);
  EXPECT_DOUBLE_EQ(s.edge(0).w, 5.0);
  EXPECT_THROW(scaled_copy(g, 0.0), std::invalid_argument);
}

TEST(Ops, MergeEdgesAddsAndCoalesces) {
  Graph base(3);
  base.add_edge(0, 1, 1.0);
  Graph extra(3);
  extra.add_edge(0, 1, 2.0);  // parallel — merges
  extra.add_edge(1, 2, 3.0);  // new
  const auto affected = merge_edges(base, extra);
  EXPECT_EQ(base.num_edges(), 2);
  EXPECT_DOUBLE_EQ(base.edge(affected[0]).w, 3.0);
  EXPECT_DOUBLE_EQ(base.edge(affected[1]).w, 3.0);
}

TEST(Ops, MergeEdgesRejectsMismatchedNodeCounts) {
  Graph a(2), b(3);
  EXPECT_THROW(merge_edges(a, b), std::invalid_argument);
}

TEST(Ops, DegreeStatsOnStar) {
  Graph g(5);
  for (NodeId v = 1; v < 5; ++v) g.add_edge(0, v, 1.0);
  const DegreeStats s = degree_stats(g);
  EXPECT_EQ(s.min, 1);
  EXPECT_EQ(s.max, 4);
  EXPECT_DOUBLE_EQ(s.mean, 8.0 / 5.0);
}

TEST(Ops, GraphsEqualDetectsDifferences) {
  Graph a(3), b(3);
  a.add_edge(0, 1, 1.0);
  b.add_edge(0, 1, 1.0);
  EXPECT_TRUE(graphs_equal(a, b));
  b.add_to_weight(0, 1e-7);
  EXPECT_FALSE(graphs_equal(a, b));
  EXPECT_TRUE(graphs_equal(a, b, 1e-6));
  Graph c(3);
  c.add_edge(0, 2, 1.0);
  EXPECT_FALSE(graphs_equal(a, c));
}

}  // namespace
}  // namespace ingrass
