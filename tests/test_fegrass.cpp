#include <gtest/gtest.h>

#include <cmath>

#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "sparsify/density.hpp"
#include "sparsify/fegrass.hpp"
#include "sparsify/grass.hpp"
#include "spectral/condition_number.hpp"
#include "util/timer.hpp"

namespace ingrass {
namespace {

Graph mesh(NodeId side, std::uint64_t seed = 3) {
  Rng rng(seed);
  return make_triangulated_grid(side, side, rng);
}

TEST(Fegrass, OutputIsConnectedSpanningSubgraphAtTargetDensity) {
  const Graph g = mesh(14);
  FegrassOptions opts;
  opts.target_offtree_density = 0.10;
  const FegrassResult r = fegrass_sparsify(g, opts);
  EXPECT_EQ(r.sparsifier.num_nodes(), g.num_nodes());
  EXPECT_TRUE(is_connected(r.sparsifier));
  EXPECT_EQ(r.tree_edges, g.num_nodes() - 1);
  EXPECT_NEAR(offtree_density(r.sparsifier), 0.10, 0.02);
}

TEST(Fegrass, EveryOutputEdgeExistsInInputWithSameWeight) {
  const Graph g = mesh(8);
  const FegrassResult r = fegrass_sparsify(g);
  for (const Edge& e : r.sparsifier.edges()) {
    const EdgeId orig = g.find_edge(e.u, e.v);
    ASSERT_NE(orig, kInvalidEdge);
    EXPECT_DOUBLE_EQ(g.edge(orig).w, e.w);  // feGRASS never reweights
  }
}

TEST(Fegrass, RejectsDisconnectedInput) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 1.0);
  EXPECT_THROW(fegrass_sparsify(g), std::invalid_argument);
}

TEST(Fegrass, EffectiveWeightReducesToPlainWeightAtZeroInfluence) {
  const Graph g = mesh(6);
  for (EdgeId e = 0; e < g.num_edges(); e += 5) {
    EXPECT_DOUBLE_EQ(fegrass_effective_weight(g, g.edge(e), 0.0), g.edge(e).w);
  }
}

TEST(Fegrass, EffectiveWeightBoostsHubEdges) {
  // Star center edges see a large hub term; an isolated pendant edge does
  // not. Same edge weight, different effective weight.
  Graph g(6);
  const EdgeId hub = g.add_edge(0, 1, 1.0);
  g.add_edge(0, 2, 10.0);
  g.add_edge(0, 3, 10.0);
  g.add_edge(1, 4, 10.0);
  const EdgeId pendant = g.add_edge(4, 5, 1.0);
  EXPECT_GT(fegrass_effective_weight(g, g.edge(hub), 1.0),
            fegrass_effective_weight(g, g.edge(pendant), 1.0));
}

TEST(Fegrass, EffectiveWeightMonotoneInInfluence) {
  const Graph g = mesh(6);
  const Edge& e = g.edge(0);
  EXPECT_LE(fegrass_effective_weight(g, e, 0.5),
            fegrass_effective_weight(g, e, 2.0));
}

TEST(Fegrass, QualityWithinSmallFactorOfGrassAtSameDensity) {
  // The headline trade: solver-free, no kappa evaluations, quality close
  // to GRASS at the same density budget.
  const Graph g = mesh(16);
  GrassOptions gopts;
  gopts.target_offtree_density = 0.10;
  const double kappa_grass =
      condition_number(g, grass_sparsify(g, gopts).sparsifier);
  FegrassOptions fopts;
  fopts.target_offtree_density = 0.10;
  const double kappa_fe =
      condition_number(g, fegrass_sparsify(g, fopts).sparsifier);
  EXPECT_LT(kappa_fe, 6.0 * kappa_grass);
  EXPECT_GE(kappa_fe, 1.0);
}

TEST(Fegrass, SpreadRoundsImproveOrMatchQuality) {
  const Graph g = mesh(14, 9);
  FegrassOptions spread;
  spread.target_offtree_density = 0.08;
  FegrassOptions no_spread = spread;
  no_spread.spread_rounds = 0;
  const double k_spread = condition_number(g, fegrass_sparsify(g, spread).sparsifier);
  const double k_rank = condition_number(g, fegrass_sparsify(g, no_spread).sparsifier);
  EXPECT_LE(k_spread, 1.5 * k_rank);  // spreading should not hurt much
}

TEST(Fegrass, DeterministicAcrossRuns) {
  const Graph g = mesh(10);
  const FegrassResult a = fegrass_sparsify(g);
  const FegrassResult b = fegrass_sparsify(g);
  ASSERT_EQ(a.sparsifier.num_edges(), b.sparsifier.num_edges());
  for (EdgeId e = 0; e < a.sparsifier.num_edges(); ++e) {
    EXPECT_EQ(a.sparsifier.edge(e).u, b.sparsifier.edge(e).u);
    EXPECT_EQ(a.sparsifier.edge(e).v, b.sparsifier.edge(e).v);
    EXPECT_DOUBLE_EQ(a.sparsifier.edge(e).w, b.sparsifier.edge(e).w);
  }
}

TEST(Fegrass, ZeroDensityYieldsSpanningTreeOnly) {
  const Graph g = mesh(8);
  FegrassOptions opts;
  opts.target_offtree_density = 0.0;
  const FegrassResult r = fegrass_sparsify(g, opts);
  EXPECT_EQ(r.sparsifier.num_edges(), g.num_nodes() - 1);
  EXPECT_EQ(r.offtree_edges, 0);
  EXPECT_TRUE(is_connected(r.sparsifier));
}

TEST(Fegrass, FasterThanKappaTargetedGrass) {
  // feGRASS's reason to exist: no condition-number evaluations. On a mesh
  // this should beat kappa-targeted GRASS comfortably; allow a wide margin
  // to stay robust on loaded CI machines.
  const Graph g = mesh(20);
  Timer t1;
  const FegrassResult fr = fegrass_sparsify(g);
  const double fe_time = t1.seconds();

  GrassOptions gopts;
  gopts.target_condition = condition_number(g, fr.sparsifier);
  Timer t2;
  (void)grass_sparsify(g, gopts);
  const double grass_time = t2.seconds();
  if (grass_time > 1e-3) {
    EXPECT_LT(fe_time, grass_time);
  }
}

}  // namespace
}  // namespace ingrass
