#include <gtest/gtest.h>

#include <cstdlib>

#include "../bench/common.hpp"

namespace ingrass::bench {
namespace {

TEST(BenchCommon, SelectedCasesDefaultsToAllFourteen) {
  ::unsetenv("INGRASS_BENCH_CASES");
  EXPECT_EQ(selected_cases().size(), 14u);
  EXPECT_EQ(selected_cases({"a", "b"}), (std::vector<std::string>{"a", "b"}));
}

TEST(BenchCommon, SelectedCasesParsesEnvList) {
  ::setenv("INGRASS_BENCH_CASES", "G2_circuit,fe_ocean", 1);
  const auto cases = selected_cases();
  ::unsetenv("INGRASS_BENCH_CASES");
  EXPECT_EQ(cases, (std::vector<std::string>{"G2_circuit", "fe_ocean"}));
}

TEST(BenchCommon, BuildCaseDeterministic) {
  const Graph a = build_case("fe_4elt2", 0.1);
  const Graph b = build_case("fe_4elt2", 0.1);
  EXPECT_EQ(a.num_nodes(), b.num_nodes());
  EXPECT_EQ(a.num_edges(), b.num_edges());
}

TEST(BenchCommon, ProtocolProducesCoherentRow) {
  // Tiny end-to-end protocol run: every reported quantity obeys the
  // relations the tables rely on.
  const Graph g = build_case("fe_4elt2", 0.08);
  ProtocolOptions opts;
  opts.iterations = 3;
  opts.total_per_node = 0.12;
  const ProtocolResult r = run_incremental_protocol("fe_4elt2", g, opts);

  EXPECT_EQ(r.nodes, g.num_nodes());
  EXPECT_EQ(r.edges, g.num_edges());
  EXPECT_NEAR(r.density0, 0.10, 0.02);
  EXPECT_GT(r.density_all, r.density0);
  EXPECT_GT(r.kappa0, 1.0);
  EXPECT_GT(r.kappa_pert, r.kappa0);            // the stream perturbs kappa
  EXPECT_GT(r.grass_density, 0.0);
  EXPECT_GE(r.ingrass_density, r.density0);     // inGRASS only adds edges
  EXPECT_LE(r.ingrass_density, r.density_all);  // ...but not all of them
  EXPECT_GE(r.random_density, r.density0);
  EXPECT_GT(r.grass_seconds, 0.0);
  EXPECT_GT(r.ingrass_update_seconds, 0.0);
  EXPECT_GT(r.ingrass_setup_seconds, 0.0);
  EXPECT_GT(r.speedup(), 1.0);                  // updates beat re-runs
  EXPECT_GT(r.ingrass_kappa, 0.0);
}

TEST(BenchCommon, ProtocolSkipsDisabledBaselines) {
  const Graph g = build_case("fe_4elt2", 0.08);
  ProtocolOptions opts;
  opts.iterations = 2;
  opts.total_per_node = 0.08;
  opts.run_grass = false;
  opts.run_random = false;
  const ProtocolResult r = run_incremental_protocol("fe_4elt2", g, opts);
  EXPECT_EQ(r.grass_seconds, 0.0);
  EXPECT_EQ(r.random_density, 0.0);
  EXPECT_GT(r.ingrass_update_seconds, 0.0);
}

}  // namespace
}  // namespace ingrass::bench
