#include <algorithm>
#include <vector>
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "spectral/effective_resistance.hpp"
#include "spectral/resistance_embedding.hpp"
#include "util/stats.hpp"

namespace ingrass {
namespace {

TEST(ResistanceEmbedding, DimensionAutoScalesWithLogN) {
  Rng rng(1);
  const Graph g = make_grid2d(16, 16, rng);
  const ResistanceEmbedding emb = ResistanceEmbedding::build(g);
  EXPECT_GE(emb.dimension(), 8);
  EXPECT_LE(emb.dimension(), 16);  // log2(256)+4 = 12, minus dropped dims
  EXPECT_EQ(emb.num_nodes(), 256);
}

TEST(ResistanceEmbedding, EstimateNonNegativeSymmetricZeroDiag) {
  Rng rng(2);
  const Graph g = make_triangulated_grid(8, 8, rng);
  const ResistanceEmbedding emb = ResistanceEmbedding::build(g);
  EXPECT_DOUBLE_EQ(emb.estimate(3, 3), 0.0);
  EXPECT_GE(emb.estimate(0, 60), 0.0);
  EXPECT_DOUBLE_EQ(emb.estimate(0, 60), emb.estimate(60, 0));
}

TEST(ResistanceEmbedding, CalibrationBringsEdgeEstimatesOnScale) {
  // Raw eq.-3 estimates sit far below the exact resistance; calibration
  // should put the *median* edge estimate within a small factor of exact.
  Rng rng(7);
  const Graph g = make_triangulated_grid(12, 12, rng);
  const ResistanceEmbedding emb = ResistanceEmbedding::build(g);
  EXPECT_GT(emb.calibration_factor(), 1.0);
  const EffectiveResistanceOracle oracle(g);
  std::vector<double> ratios;
  for (EdgeId e = 0; e < g.num_edges(); e += 7) {
    const Edge& ed = g.edge(e);
    const double exact = oracle.resistance(ed.u, ed.v);
    if (exact > 0) ratios.push_back(emb.estimate(ed.u, ed.v) / exact);
  }
  std::sort(ratios.begin(), ratios.end());
  const double median = ratios[ratios.size() / 2];
  EXPECT_GT(median, 0.2);
  EXPECT_LT(median, 5.0);
}

TEST(ResistanceEmbedding, CalibrationDisabledKeepsRawScale) {
  Rng rng(8);
  const Graph g = make_triangulated_grid(10, 10, rng);
  ResistanceEmbedding::Options raw;
  raw.calibration_samples = 0;
  const ResistanceEmbedding emb = ResistanceEmbedding::build(g, raw);
  EXPECT_DOUBLE_EQ(emb.calibration_factor(), 1.0);
}

TEST(ResistanceEmbedding, CalibrationPreservesPairOrdering) {
  // Scaling every coordinate by the same factor must not change which of
  // two pairs is estimated larger.
  Rng rng(9);
  const Graph g = make_triangulated_grid(10, 10, rng);
  ResistanceEmbedding::Options raw;
  raw.calibration_samples = 0;
  const ResistanceEmbedding a = ResistanceEmbedding::build(g, raw);
  const ResistanceEmbedding b = ResistanceEmbedding::build(g);
  for (NodeId u = 0; u < 20; ++u) {
    const bool raw_order = a.estimate(u, 50) < a.estimate(u, 99);
    const bool cal_order = b.estimate(u, 50) < b.estimate(u, 99);
    EXPECT_EQ(raw_order, cal_order);
  }
}

TEST(ResistanceEmbedding, CorrelatesWithExactResistance) {
  // The embedding need not match exact values, but the *ranking* of node
  // pairs is what inGRASS uses — check rank correlation on edge pairs of a
  // mesh against the CG oracle.
  Rng rng(3);
  const Graph g = make_triangulated_grid(10, 10, rng);
  ResistanceEmbedding::Options opts;
  opts.order = 24;
  const ResistanceEmbedding emb = ResistanceEmbedding::build(g, opts);
  const EffectiveResistanceOracle oracle(g);

  // Sample pairs at a mix of distances.
  std::vector<std::pair<NodeId, NodeId>> pairs;
  Rng prng(17);
  for (int i = 0; i < 60; ++i) {
    const auto u = static_cast<NodeId>(prng.uniform_index(100));
    const auto v = static_cast<NodeId>(prng.uniform_index(100));
    if (u != v) pairs.emplace_back(u, v);
  }
  // Count concordant orderings among random pair-of-pairs.
  int concordant = 0, total = 0;
  for (std::size_t i = 0; i + 1 < pairs.size(); i += 2) {
    const auto [a, b] = pairs[i];
    const auto [c, d] = pairs[i + 1];
    const double exact_diff = oracle.resistance(a, b) - oracle.resistance(c, d);
    const double est_diff = emb.estimate(a, b) - emb.estimate(c, d);
    if (std::abs(exact_diff) < 1e-6) continue;
    ++total;
    if ((exact_diff > 0) == (est_diff > 0)) ++concordant;
  }
  ASSERT_GT(total, 15);
  EXPECT_GT(static_cast<double>(concordant) / total, 0.75);
}

TEST(ResistanceEmbedding, HigherOrderImprovesAccuracy) {
  Rng rng(4);
  const Graph g = make_grid2d(12, 12, rng);
  const EffectiveResistanceOracle oracle(g);

  auto mean_rel_err = [&](int order) {
    ResistanceEmbedding::Options opts;
    opts.order = order;
    opts.smoothing_steps = 0;
    const ResistanceEmbedding emb = ResistanceEmbedding::build(g, opts);
    RunningStats err;
    for (EdgeId e = 0; e < g.num_edges(); e += 7) {
      const Edge& edge = g.edge(e);
      const double exact = oracle.resistance(edge.u, edge.v);
      err.add(rel_err(emb.estimate(edge.u, edge.v), exact));
    }
    return err.mean();
  };
  // More Krylov vectors capture more of the spectrum (eq. 3 with larger m).
  EXPECT_LT(mean_rel_err(48), mean_rel_err(4));
}

TEST(ResistanceEmbedding, DistortionIsWeightTimesResistance) {
  Rng rng(5);
  const Graph g = make_grid2d(6, 6, rng);
  const ResistanceEmbedding emb = ResistanceEmbedding::build(g);
  Edge e;
  e.u = 0;
  e.v = 20;
  e.w = 3.0;
  EXPECT_DOUBLE_EQ(emb.distortion(e), 3.0 * emb.estimate(0, 20));
}

TEST(ResistanceEmbedding, CoordsSpanDimension) {
  Rng rng(6);
  const Graph g = make_grid2d(6, 6, rng);
  const ResistanceEmbedding emb = ResistanceEmbedding::build(g);
  EXPECT_EQ(emb.coords(0).size(), static_cast<std::size_t>(emb.dimension()));
  EXPECT_THROW(static_cast<void>(emb.coords(1000)), std::out_of_range);
  EXPECT_THROW(static_cast<void>(emb.estimate(-1, 0)), std::out_of_range);
}

TEST(ResistanceEmbedding, DeterministicForSeed) {
  Rng rng(7);
  const Graph g = make_grid2d(8, 8, rng);
  ResistanceEmbedding::Options opts;
  opts.seed = 123;
  const ResistanceEmbedding a = ResistanceEmbedding::build(g, opts);
  const ResistanceEmbedding b = ResistanceEmbedding::build(g, opts);
  EXPECT_EQ(a.dimension(), b.dimension());
  EXPECT_DOUBLE_EQ(a.estimate(0, 63), b.estimate(0, 63));
}

TEST(ResistanceEmbedding, FarPairsReadHigherThanAdjacentOnes) {
  Rng rng(8);
  const Graph g = make_grid2d(16, 16, rng, 1.0, 1.0);
  const ResistanceEmbedding emb = ResistanceEmbedding::build(g);
  // Opposite grid corners vs an adjacent pair in the middle.
  const double far = emb.estimate(0, 16 * 16 - 1);
  const double near = emb.estimate(8 * 16 + 7, 8 * 16 + 8);
  EXPECT_GT(far, near);
}

}  // namespace
}  // namespace ingrass
