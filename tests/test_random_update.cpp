#include <gtest/gtest.h>

#include "core/edge_stream.hpp"
#include "graph/generators.hpp"
#include "graph/ops.hpp"
#include "sparsify/grass.hpp"
#include "sparsify/random_update.hpp"

namespace ingrass {
namespace {

struct Fixture {
  Graph g;
  Graph h;
  Fixture() {
    Rng rng(1);
    g = make_triangulated_grid(12, 12, rng);
    GrassOptions opts;
    opts.target_offtree_density = 0.10;
    h = grass_sparsify(g, opts).sparsifier;
  }
};

TEST(RandomUpdate, ReachesTargetEventually) {
  Fixture f;
  const double kappa0 = condition_number(f.g, f.h);

  EdgeStreamOptions sopts;
  sopts.iterations = 1;
  sopts.total_per_node = 0.2;
  const auto batches = make_edge_stream(f.g, sopts);
  ASSERT_EQ(batches.size(), 1u);

  // Apply batch to G.
  for (const Edge& e : batches[0]) f.g.add_or_merge_edge(e.u, e.v, e.w);

  RandomUpdateOptions ropts;
  ropts.target_condition = kappa0 * 2.0;  // loose target, reachable
  const RandomUpdateResult r = random_update(f.g, f.h, batches[0], ropts);
  EXPECT_LE(r.achieved_condition, ropts.target_condition * 1.1);
  EXPECT_GT(r.condition_evals, 0);
}

TEST(RandomUpdate, AddsEverythingWhenTargetUnreachable) {
  Fixture f;
  EdgeStreamOptions sopts;
  sopts.iterations = 1;
  sopts.total_per_node = 0.1;
  const auto batches = make_edge_stream(f.g, sopts);
  for (const Edge& e : batches[0]) f.g.add_or_merge_edge(e.u, e.v, e.w);

  RandomUpdateOptions ropts;
  ropts.target_condition = 1.0001;  // essentially unreachable
  const EdgeId before = f.h.num_edges();
  const RandomUpdateResult r = random_update(f.g, f.h, batches[0], ropts);
  EXPECT_EQ(r.edges_added, static_cast<EdgeId>(batches[0].size()));
  EXPECT_EQ(f.h.num_edges() - before, r.edges_added);
}

TEST(RandomUpdate, EmptyBatchJustMeasures) {
  Fixture f;
  RandomUpdateOptions ropts;
  ropts.target_condition = 1000.0;
  const RandomUpdateResult r = random_update(f.g, f.h, {}, ropts);
  EXPECT_EQ(r.edges_added, 0);
  EXPECT_GT(r.achieved_condition, 0.0);
}

TEST(RandomUpdate, RequiresTarget) {
  Fixture f;
  RandomUpdateOptions ropts;  // target unset
  EXPECT_THROW(random_update(f.g, f.h, {}, ropts), std::invalid_argument);
}

TEST(RandomUpdate, DeterministicForSeed) {
  Fixture f1, f2;
  EdgeStreamOptions sopts;
  sopts.iterations = 1;
  sopts.total_per_node = 0.1;
  const auto batches = make_edge_stream(f1.g, sopts);
  for (const Edge& e : batches[0]) {
    f1.g.add_or_merge_edge(e.u, e.v, e.w);
    f2.g.add_or_merge_edge(e.u, e.v, e.w);
  }
  RandomUpdateOptions ropts;
  ropts.target_condition = 1.0001;  // forces adding everything, same order
  ropts.seed = 7;
  random_update(f1.g, f1.h, batches[0], ropts);
  random_update(f2.g, f2.h, batches[0], ropts);
  EXPECT_TRUE(graphs_equal(f1.h, f2.h));
}

}  // namespace
}  // namespace ingrass
