// The distributed coordinator against an in-process shard-server fleet
// (dist/fleet.hpp): the acceptance bar is differential — a 4-shard
// DistributedSession over loopback TCP solves the exact global Laplacian
// to the same tolerance as the in-process ShardedSession — plus the
// fault-injection battery: killing a shard server mid-session surfaces a
// typed serve::ShardOpError (never a hang), and the next RPC after a
// restart recovers the shard from the coordinator's mirror.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "dist/dist_session.hpp"
#include "dist/fleet.hpp"
#include "graph/generators.hpp"
#include "obs/registry.hpp"
#include "serve/checkpoint.hpp"
#include "serve/protocol.hpp"
#include "serve/session.hpp"
#include "serve/shard_dispatcher.hpp"
#include "util/rng.hpp"

namespace ingrass::dist {
namespace {

std::string scratch_path(const std::string& name) {
  static const std::string pid = std::to_string(::getpid());
  return "dist_scratch_" + pid + "_" + name;
}

Graph test_graph(int side = 10, std::uint64_t seed = 7) {
  Rng rng(seed);
  return make_triangulated_grid(static_cast<NodeId>(side),
                                static_cast<NodeId>(side), rng);
}

serve::SessionSpec fast_spec() {
  serve::SessionSpec spec;
  spec.density = 0.20;
  spec.target = 80.0;
  spec.sync = true;  // deterministic rebuilds on the shard servers
  return spec;
}

DistOptions fast_opts() {
  DistOptions opts;
  opts.spec = fast_spec();
  opts.dir = ".";
  // Loopback: failures should fail fast, not wait out production windows.
  opts.connect_timeout = 5.0;
  opts.rpc_deadline = 30.0;
  opts.retries = 1;
  opts.backoff_ms = 10;
  return opts;
}

/// b = e_u - e_v on any serve::Session; returns x[u] - x[v].
double solve_pair(serve::Session& s, NodeId u, NodeId v,
                  SparsifierSolver::Result* out = nullptr) {
  const auto n = static_cast<std::size_t>(s.num_nodes());
  std::vector<double> b(n, 0.0), x(n, 0.0);
  b[static_cast<std::size_t>(u)] = 1.0;
  b[static_cast<std::size_t>(v)] = -1.0;
  const auto r = s.solve(b, x);
  if (out) *out = r;
  return x[static_cast<std::size_t>(u)] - x[static_cast<std::size_t>(v)];
}

TEST(DistSession, FourShardSolveMatchesInProcessShardedSession) {
  const Graph g0 = test_graph();
  const NodeId n = g0.num_nodes();
  LocalFleet fleet(4, ".");
  DistOptions opts = fast_opts();
  DistributedSession dist(Graph(g0), fleet.endpoints(), opts);
  ShardedSession sharded(Graph(g0), 4,
                         opts.spec.sharded_options(opts.partition));

  SparsifierSolver::Result rd, rs;
  const double got = solve_pair(dist, 0, static_cast<NodeId>(n - 1), &rd);
  const double want = solve_pair(sharded, 0, static_cast<NodeId>(n - 1), &rs);
  ASSERT_TRUE(rs.converged);
  ASSERT_TRUE(rd.converged);
  // The acceptance bar: the distributed path meets the *same* tolerance
  // on the *same* exact global Laplacian.
  const double tol = opts.spec.session_options().solver.outer_tol;
  EXPECT_LE(rd.relative_residual, tol);
  EXPECT_LE(rs.relative_residual, tol);
  EXPECT_NEAR(got, want, 1e-5 * std::abs(want));

  const serve::ServingMetrics m = dist.serving_metrics();
  EXPECT_TRUE(m.sharded);
  EXPECT_EQ(m.shards, 4);
  EXPECT_EQ(m.nodes, n);
  EXPECT_EQ(m.g_edges, g0.num_edges());
  EXPECT_GT(m.h_edges, 0);
  EXPECT_GT(m.boundary_edges, 0);
  EXPECT_EQ(m.global_solves, 1u);
  // Per-shard metrics come back over the wire; real nodes must add up.
  NodeId real_nodes = 0;
  for (int k = 0; k < 4; ++k) {
    const SessionMetrics sm = dist.shard_metrics(k);
    EXPECT_GT(sm.h_edges, 0) << "shard " << k;
    real_nodes += sm.nodes - 1;  // minus each shard's ground node
  }
  EXPECT_EQ(real_nodes, n);
}

TEST(DistSession, ApplyRoutesUpdatesAndSolvesStayExact) {
  const Graph g0 = test_graph(8, 11);
  const NodeId n = g0.num_nodes();
  LocalFleet fleet(2, ".");
  DistOptions opts = fast_opts();
  DistributedSession dist(Graph(g0), fleet.endpoints(), opts);

  // Mutate: a batch of fresh edges (some will cross the cut), then a
  // second batch removing a pre-existing edge — separate batches so the
  // local model below does not depend on intra-batch ordering.
  Graph mutated(g0);
  UpdateBatch batch;
  Rng rng(23);
  for (int i = 0; i < 12; ++i) {
    const auto u = static_cast<NodeId>(rng.uniform_index(
        static_cast<std::uint64_t>(n)));
    const auto v = static_cast<NodeId>(rng.uniform_index(
        static_cast<std::uint64_t>(n)));
    if (u == v) continue;
    batch.inserts.push_back(Edge{u, v, 0.5 + 0.1 * i});
    mutated.add_or_merge_edge(u, v, 0.5 + 0.1 * i);
  }
  (void)dist.apply(batch);

  const Edge doomed = g0.edge(0);
  UpdateBatch removal;
  removal.removals.emplace_back(doomed.u, doomed.v);
  mutated.remove_edge(mutated.find_edge(doomed.u, doomed.v));
  const ApplyResult r = dist.apply(removal);
  EXPECT_EQ(r.removed, 1);
  EXPECT_EQ(dist.serving_metrics().g_edges, mutated.num_edges());

  // Differential against an in-process sharded session opened on the
  // already-mutated graph: same Laplacian, same tolerance.
  ShardedSession sharded(Graph(mutated), 2,
                         opts.spec.sharded_options(opts.partition));
  SparsifierSolver::Result rd;
  const double got = solve_pair(dist, 0, static_cast<NodeId>(n - 1), &rd);
  const double want = solve_pair(sharded, 0, static_cast<NodeId>(n - 1));
  ASSERT_TRUE(rd.converged);
  EXPECT_NEAR(got, want, 1e-5 * std::abs(want));
}

TEST(DistSession, KilledShardSurfacesTypedErrorThenRecoversOnRestart) {
  const Graph g0 = test_graph(8, 5);
  const NodeId n = g0.num_nodes();
  LocalFleet fleet(2, ".");
  DistOptions opts = fast_opts();
  opts.retries = 0;  // the apply path must fail, not paper over the kill
  DistributedSession dist(Graph(g0), fleet.endpoints(), opts);
  const std::uint64_t gen0 = dist.generation();
  const double want = solve_pair(dist, 0, static_cast<NodeId>(n - 1));

  obs::Counter& recoveries =
      obs::registry().counter("ingrass_dist_shard_recoveries_total");
  const std::uint64_t recovered_before = recoveries.value();

  // Kill shard 1's server mid-session: the next fan-out must surface the
  // typed error (and return — never hang) because the shard missed the
  // batch the mirror already took.
  fleet.stop(1);
  UpdateBatch batch;
  batch.inserts.push_back(Edge{0, static_cast<NodeId>(n - 1), 2.0});
  try {
    (void)dist.apply(batch);
    FAIL() << "apply against a dead shard server succeeded";
  } catch (const serve::ShardOpError& e) {
    EXPECT_TRUE(e.code() == serve::resp::ShardErrorCode::kUnavailable ||
                e.code() == serve::resp::ShardErrorCode::kTimeout)
        << static_cast<int>(e.code()) << ": " << e.what();
  }

  // Restart on the same port: the next RPC reconnects and re-handshakes
  // the shard fresh from the mirror — which already holds the batch the
  // failed apply kept — so the solve sees the post-batch graph.
  fleet.restart(1);
  SparsifierSolver::Result rd;
  std::vector<double> b(static_cast<std::size_t>(n), 0.0);
  std::vector<double> x(static_cast<std::size_t>(n), 0.0);
  b[0] = 1.0;
  b[static_cast<std::size_t>(n - 1)] = -1.0;
  rd = dist.solve(b, x);
  ASSERT_TRUE(rd.converged);
  const double got = x[0] - x[static_cast<std::size_t>(n - 1)];
  // The inserted edge lowers the effective resistance between its
  // endpoints; recovering from the pre-batch blob instead would give the
  // old value back.
  EXPECT_LT(got, want);
  EXPECT_GE(recoveries.value(), recovered_before + 1);
  EXPECT_GT(dist.generation(), gen0);  // recovery handshakes bump it
}

TEST(DistSession, CheckpointRestoreRoundTripsAcrossCoordinators) {
  const Graph g0 = test_graph(8, 3);
  const NodeId n = g0.num_nodes();
  LocalFleet fleet(2, ".");
  DistOptions opts = fast_opts();
  const std::string manifest = scratch_path("fleet.ck");

  double want = 0.0;
  std::uint64_t gen = 0;
  {
    DistributedSession dist(Graph(g0), fleet.endpoints(), opts);
    UpdateBatch batch;
    batch.inserts.push_back(Edge{1, static_cast<NodeId>(n - 2), 3.0});
    (void)dist.apply(batch);
    want = solve_pair(dist, 0, static_cast<NodeId>(n - 1));
    dist.checkpoint(manifest);
    gen = dist.generation();
  }  // the coordinator's dtor closes the shard sub-sessions

  const DistManifest m = load_dist_manifest(manifest);
  EXPECT_EQ(m.generation, gen);
  EXPECT_EQ(m.endpoints, fleet.endpoints());
  ASSERT_EQ(m.base.shard_files.size(), 2u);

  auto restored = DistributedSession::restore(manifest, opts);
  EXPECT_EQ(restored->generation(), gen);
  EXPECT_EQ(restored->num_nodes(), n);
  SparsifierSolver::Result rr;
  const double got = solve_pair(*restored, 0, static_cast<NodeId>(n - 1), &rr);
  ASSERT_TRUE(rr.converged);
  EXPECT_NEAR(got, want, 1e-5 * std::abs(want));
  // Stitched-sparsifier diagnostics still work across the round trip.
  const double kappa = restored->settled_kappa();
  EXPECT_GT(kappa, 1.0);
  EXPECT_TRUE(std::isfinite(kappa));

  restored.reset();
  for (const std::string& f : m.base.shard_files) std::remove(f.c_str());
  std::remove(manifest.c_str());
}

TEST(DistSession, RejectsDegeneratePartitions) {
  LocalFleet fleet(2, ".");
  EXPECT_THROW(DistributedSession(test_graph(4), {"127.0.0.1:1"}, fast_opts()),
               std::invalid_argument);
  Graph tiny(1);
  EXPECT_THROW(DistributedSession(std::move(tiny), fleet.endpoints(), fast_opts()),
               std::invalid_argument);
}

}  // namespace
}  // namespace ingrass::dist
