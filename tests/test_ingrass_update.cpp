#include <gtest/gtest.h>

#include "core/edge_stream.hpp"
#include "core/ingrass.hpp"
#include "graph/generators.hpp"
#include "sparsify/grass.hpp"
#include "spectral/condition_number.hpp"

namespace ingrass {
namespace {

struct Fixture {
  Graph g;      // original graph
  Graph h0;     // initial sparsifier
  double kappa0 = 0.0;
  Fixture(NodeId side = 14, double density = 0.10) {
    Rng rng(1);
    g = make_triangulated_grid(side, side, rng);
    GrassOptions opts;
    opts.target_offtree_density = density;
    h0 = grass_sparsify(g, opts).sparsifier;
    kappa0 = condition_number(g, h0);
  }
};

TEST(IngrassUpdate, ClassifiesEveryEdge) {
  Fixture f;
  Ingrass::Options opts;
  opts.target_condition = f.kappa0;
  Ingrass ing(Graph(f.h0), opts);

  EdgeStreamOptions sopts;
  sopts.iterations = 1;
  sopts.total_per_node = 0.2;
  const auto batches = make_edge_stream(f.g, sopts);
  const auto stats = ing.insert_edges(batches[0]);
  EXPECT_EQ(stats.total(), static_cast<EdgeId>(batches[0].size()));
  EXPECT_GT(stats.inserted + stats.merged + stats.redistributed, 0);
}

TEST(IngrassUpdate, ParallelEdgeReinforcesExactly) {
  // An inserted edge parallel to one H already carries adds its weight to
  // that edge — exact parallel-resistor combination, bypassing the filter
  // (and the fold fraction, which defaults to dropping filtered weight).
  Fixture f;
  Ingrass::Options opts;
  opts.target_condition = f.kappa0;
  Ingrass ing(Graph(f.h0), opts);

  const Edge& target = ing.sparsifier().edge(5);
  const double w_before = target.w;
  const std::vector<Edge> batch{Edge{target.u, target.v, 2.5}};
  const auto stats = ing.insert_edges(batch);
  EXPECT_EQ(stats.reinforced, 1);
  EXPECT_EQ(stats.inserted + stats.merged + stats.redistributed, 0);
  const EdgeId id = ing.sparsifier().find_edge(target.u, target.v);
  EXPECT_DOUBLE_EQ(ing.sparsifier().edge(id).w, w_before + 2.5);
  // No structural change: same edge count.
  EXPECT_EQ(ing.sparsifier().num_edges(), f.h0.num_edges());
}

TEST(IngrassUpdate, ReinforceIsIdempotentAcrossBatches) {
  Fixture f;
  Ingrass ing{Graph(f.h0)};
  const Edge& target = ing.sparsifier().edge(3);
  const double w0 = target.w;
  for (int i = 0; i < 4; ++i) {
    const std::vector<Edge> batch{Edge{target.u, target.v, 1.0}};
    EXPECT_EQ(ing.insert_edges(batch).reinforced, 1);
  }
  const EdgeId id = ing.sparsifier().find_edge(target.u, target.v);
  EXPECT_DOUBLE_EQ(ing.sparsifier().edge(id).w, w0 + 4.0);
}

TEST(IngrassUpdate, FiltersRedundantEdges) {
  // With a locality-heavy stream most edges should be filtered (merged or
  // redistributed), which is the whole point of similarity filtering.
  Fixture f;
  Ingrass::Options opts;
  opts.target_condition = f.kappa0;
  Ingrass ing(Graph(f.h0), opts);

  EdgeStreamOptions sopts;
  sopts.iterations = 1;
  sopts.total_per_node = 0.24;
  sopts.locality_fraction = 0.9;
  const auto batches = make_edge_stream(f.g, sopts);
  const auto stats = ing.insert_edges(batches[0]);
  EXPECT_LT(stats.inserted, static_cast<EdgeId>(batches[0].size()));
  EXPECT_GT(stats.merged + stats.redistributed, 0);
}

TEST(IngrassUpdate, SparsifierStaysMuchSparserThanAddingAll) {
  Fixture f;
  Ingrass::Options opts;
  // A looser quality target lets the similarity filter work at a deeper
  // level — the regime where most of the stream should be folded away.
  opts.target_condition = 3.0 * f.kappa0;
  Ingrass ing(Graph(f.h0), opts);

  EdgeStreamOptions sopts;
  sopts.iterations = 10;
  sopts.total_per_node = 0.24;
  const auto batches = make_edge_stream(f.g, sopts);
  EdgeId streamed = 0;
  for (const auto& batch : batches) {
    streamed += static_cast<EdgeId>(batch.size());
    ing.insert_edges(batch);
  }
  const EdgeId grown = ing.sparsifier().num_edges() - f.h0.num_edges();
  EXPECT_LT(grown, streamed / 2);  // at least half the stream filtered
}

TEST(IngrassUpdate, WeightIsConservedInPaperFaithfulMode) {
  // With fold_weight_fraction = 1.0 (the paper's rule) every filtered
  // edge's weight lands somewhere in H (merged into a bridge or
  // redistributed), so total weight grows by the batch total.
  Fixture f;
  Ingrass::Options opts;
  opts.target_condition = f.kappa0;
  opts.fold_weight_fraction = 1.0;
  opts.merge_weight_ratio = 0.0;  // no dominance guard: pure paper rule
  Ingrass ing(Graph(f.h0), opts);

  EdgeStreamOptions sopts;
  sopts.iterations = 1;
  sopts.total_per_node = 0.15;
  const auto batches = make_edge_stream(f.g, sopts);
  double batch_weight = 0.0;
  for (const Edge& e : batches[0]) batch_weight += e.w;

  const double before = ing.sparsifier().total_weight();
  ing.insert_edges(batches[0]);
  EXPECT_NEAR(ing.sparsifier().total_weight(), before + batch_weight,
              1e-6 * (before + batch_weight));
}

TEST(IngrassUpdate, SubWeightedWhenFoldDisabled) {
  // Default mode drops filtered weight, so H stays a sub-weighted
  // approximation of G: every H edge's weight <= the matching G edge's.
  Fixture f;
  Ingrass::Options opts;
  opts.target_condition = f.kappa0;
  Ingrass ing(Graph(f.h0), opts);

  EdgeStreamOptions sopts;
  sopts.iterations = 3;
  sopts.total_per_node = 0.2;
  const auto batches = make_edge_stream(f.g, sopts);
  Graph g = f.g;
  for (const auto& batch : batches) {
    for (const Edge& e : batch) g.add_or_merge_edge(e.u, e.v, e.w);
    ing.insert_edges(batch);
  }
  for (const Edge& e : ing.sparsifier().edges()) {
    const EdgeId in_g = g.find_edge(e.u, e.v);
    ASSERT_NE(in_g, kInvalidEdge);
    EXPECT_LE(e.w, g.edge(in_g).w * (1.0 + 1e-9));
  }
}

TEST(IngrassUpdate, MaintainsConditionNumberNearTarget) {
  // Core end-to-end claim: after the stream, inGRASS's sparsifier keeps
  // kappa(L_G, L_H) in the neighborhood of the initial value while adding
  // few edges; excluding all new edges would blow kappa up.
  Fixture f;
  Ingrass::Options opts;
  opts.target_condition = f.kappa0;
  Ingrass ing(Graph(f.h0), opts);

  EdgeStreamOptions sopts;
  sopts.iterations = 10;
  sopts.total_per_node = 0.24;
  const auto batches = make_edge_stream(f.g, sopts);
  Graph g = f.g;  // evolving original
  for (const auto& batch : batches) {
    for (const Edge& e : batch) g.add_or_merge_edge(e.u, e.v, e.w);
    ing.insert_edges(batch);
  }
  const double kappa_stale = condition_number(g, f.h0);
  const double kappa_ingrass = condition_number(g, ing.sparsifier());
  EXPECT_GT(kappa_stale, 1.5 * f.kappa0);           // stream really perturbs
  EXPECT_LT(kappa_ingrass, 0.9 * kappa_stale);      // update phase fixes it
  EXPECT_LT(kappa_ingrass, 4.0 * f.kappa0);         // and lands near target
}

TEST(IngrassUpdate, CriticalEdgeInsertedRedundantFiltered) {
  // Hand-crafted contrast on a path sparsifier of a cycle-ish graph: a
  // long-range chord is critical (inserted); a duplicate of an existing
  // 1-hop pair is redundant (merged/redistributed).
  Graph h(40);
  for (NodeId v = 0; v + 1 < 40; ++v) h.add_edge(v, v + 1, 1.0);
  Ingrass::Options opts;
  opts.target_condition = 16.0;
  Ingrass ing(Graph(h), opts);

  std::vector<Edge> batch;
  batch.push_back(Edge{0, 39, 1.0});  // long-range: critical
  batch.push_back(Edge{5, 6, 1.0});   // parallel to an existing edge
  batch.push_back(Edge{10, 12, 1.0});  // 2-hop chord: redundant
  const auto stats = ing.insert_edges(batch);
  EXPECT_EQ(stats.inserted, 1);
  EXPECT_EQ(stats.reinforced, 1);
  EXPECT_EQ(stats.merged + stats.redistributed, 1);
  EXPECT_TRUE(ing.sparsifier().has_edge(0, 39));
}

TEST(IngrassUpdate, MergeAddsWeightToBridge) {
  Graph h(40);
  for (NodeId v = 0; v + 1 < 40; ++v) h.add_edge(v, v + 1, 1.0);
  Ingrass::Options opts;
  opts.target_condition = 8.0;
  opts.fold_weight_fraction = 1.0;  // paper-faithful weight handling
  opts.merge_weight_ratio = 0.0;
  Ingrass ing(Graph(h), opts);

  // Insert a unique chord, then a second chord between the same clusters;
  // the second should merge into the first (or another bridge), raising
  // total weight but not edge count.
  std::vector<Edge> first{Edge{0, 39, 2.0}};
  ing.insert_edges(first);
  const EdgeId edges_after_first = ing.sparsifier().num_edges();
  const double weight_after_first = ing.sparsifier().total_weight();

  std::vector<Edge> second{Edge{1, 38, 3.0}};
  const auto stats = ing.insert_edges(second);
  if (stats.merged == 1) {
    EXPECT_EQ(ing.sparsifier().num_edges(), edges_after_first);
  }
  EXPECT_NEAR(ing.sparsifier().total_weight(), weight_after_first + 3.0, 1e-9);
}

TEST(IngrassUpdate, EmptyBatchIsNoop) {
  Fixture f(8);
  Ingrass ing{Graph(f.h0)};
  const auto stats = ing.insert_edges({});
  EXPECT_EQ(stats.total(), 0);
}

TEST(IngrassUpdate, UpdateIsFastRelativeToSetup) {
  // O(log N) per edge vs O(N log N) setup: a small batch must cost a tiny
  // fraction of the setup. Smoke-check with wide margins.
  Fixture f(24);
  Ingrass ing{Graph(f.h0)};
  EdgeStreamOptions sopts;
  sopts.iterations = 1;
  sopts.total_per_node = 0.05;
  const auto batches = make_edge_stream(f.g, sopts);
  const auto stats = ing.insert_edges(batches[0]);
  if (ing.setup_seconds() > 1e-3) {
    EXPECT_LT(stats.seconds, ing.setup_seconds());
  }
}

}  // namespace
}  // namespace ingrass
