// Concurrent multi-client TCP serving: N client threads × M commands
// against one server, mixed tenants with interleaved apply/solve/
// checkpoint/close, per-tenant command ordering, no torn binary frames,
// kappa within budget for every tenant, backpressure (staged cap, queue
// cap, connection cap) answering with typed Busy responses instead of
// hangs, and the MSG_PEEK codec auto-detect surviving a client that
// dribbles the binary magic one byte at a time. These run under the
// ASan/UBSan and TSan presets in CI.

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "graph/generators.hpp"
#include "graph/mtx_io.hpp"
#include "serve/protocol.hpp"
#include "serve/transport.hpp"
#include "util/rng.hpp"

namespace ingrass::serve {
namespace {

/// Per-process scratch file. ctest runs this binary's cases as separate
/// concurrent processes, so every artifact (port files, graphs, the
/// fifo) must be process-unique or cases cross-talk — a client would
/// rendezvous with another case's server.
std::string scratch_path(const std::string& name) {
  static const std::string pid = std::to_string(::getpid());
  return testing::TempDir() + "/ingrass_ctcp_" + pid + "_" + name;
}

/// A small connected test graph on disk, shared by every server test.
const std::string& test_mtx() {
  static const std::string path = [] {
    Rng rng(7);
    const Graph g = make_triangulated_grid(5, 5, rng);
    const std::string p = scratch_path("grid.mtx");
    write_mtx_file(p, g);
    return p;
  }();
  return path;
}

SessionSpec fast_spec() {
  SessionSpec spec;
  spec.density = 0.3;
  spec.target = 100.0;
  spec.grass_target = 40.0;
  spec.sync = true;  // deterministic rebuilds
  return spec;
}

/// One serve_tcp server on an ephemeral port, shut down by a quit client.
struct TestServer {
  explicit TestServer(EngineOptions eopts = {}, TcpOptions topts = {})
      : engine(eopts) {
    static std::atomic<int> counter{0};
    const std::string port_file =
        scratch_path("port_" + std::to_string(counter.fetch_add(1)) + ".txt");
    std::remove(port_file.c_str());
    topts.port_file = port_file;
    thread = std::thread([this, topts] { serve_tcp(engine, topts); });
    port = wait_for_port_file(port_file);
  }

  /// Send a quit on a fresh connection and join the server.
  void stop() {
    BinaryCodec codec;
    TcpClient client(port);
    codec.write_request(client.out(), req::Quit{});
    client.out().flush();
    (void)codec.read_response(client.in());
    thread.join();
  }

  /// A test that died before stopping the server must not terminate()
  /// on the joinable thread member — try the clean quit, detach if the
  /// server is beyond reach.
  ~TestServer() {
    if (!thread.joinable()) return;
    try {
      stop();
    } catch (...) {
      thread.detach();
    }
  }

  Engine engine;
  std::thread thread;
  std::uint16_t port = 0;
};

/// Send one request and read its response over an established client.
Response roundtrip(BinaryCodec& codec, TcpClient& client, const Request& request) {
  codec.write_request(client.out(), request);
  client.out().flush();
  const auto response = codec.read_response(client.in());
  if (!response) throw std::runtime_error("server closed the connection");
  return *response;
}

// ---------------------------------------------------------------------------
// Simultaneous progress (the acceptance criterion)

TEST(ServeConcurrentTcp, SecondClientCompletesWhileFirstHoldsItsConnection) {
  TestServer server;
  BinaryCodec codec;

  // Client A opens a tenant and then sits on its connection mid-session
  // without disconnecting. Under the old sequential accept loop this
  // parked every later client behind A forever.
  TcpClient a(server.port);
  ASSERT_TRUE(std::holds_alternative<resp::Opened>(
      roundtrip(codec, a, req::Open{"a", test_mtx(), fast_spec()})));

  // Client B connects while A is still connected and completes a whole
  // open → stage → apply → solve session.
  {
    TcpClient b(server.port);
    ASSERT_TRUE(std::holds_alternative<resp::Opened>(
        roundtrip(codec, b, req::Open{"b", test_mtx(), fast_spec()})));
    ASSERT_TRUE(std::holds_alternative<resp::Staged>(
        roundtrip(codec, b, req::Insert{"b", 0, 24, 1.0})));
    ASSERT_TRUE(std::holds_alternative<resp::Applied>(
        roundtrip(codec, b, req::Apply{"b"})));
    const Response solved = roundtrip(codec, b, req::Solve{"b", 0, 24});
    ASSERT_TRUE(std::holds_alternative<resp::Solved>(solved));
    EXPECT_GT(std::get<resp::Solved>(solved).resistance, 0.0);
  }

  // A's connection is still healthy after B's full session.
  const Response solved = roundtrip(codec, a, req::Solve{"a", 0, 24});
  ASSERT_TRUE(std::holds_alternative<resp::Solved>(solved));
  EXPECT_GT(std::get<resp::Solved>(solved).resistance, 0.0);
  server.stop();
}

// ---------------------------------------------------------------------------
// N threads × M commands, mixed tenants

TEST(ServeConcurrentTcp, ManyClientsInterleaveApplySolveCheckpointClose) {
  constexpr int kClients = 4;
  constexpr int kRounds = 4;
  TestServer server;

  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  for (int c = 0; c < kClients; ++c) {
    workers.emplace_back([&, c] {
      // (named suffix: GCC 12's -Wrestrict misfires on  "t" + std::to_string(c))
      const std::string suffix = std::to_string(c);
      const std::string tenant = "t" + suffix;
      const std::string ck = scratch_path("ck_" + tenant + ".bin");
      try {
        BinaryCodec codec;
        TcpClient client(server.port);
        Response r = roundtrip(codec, client, req::Open{tenant, test_mtx(), fast_spec()});
        ASSERT_TRUE(std::holds_alternative<resp::Opened>(r));
        std::uint64_t staged_total = 0;
        for (int round = 0; round < kRounds; ++round) {
          // Two stages, then apply: the Staged counts prove per-tenant
          // arrival-order execution (1 then 2, reset by the apply) —
          // another tenant's traffic must never perturb them.
          const NodeId u = static_cast<NodeId>((round * 3 + c) % 24);
          r = roundtrip(codec, client, req::Insert{tenant, u, 24, 1.0});
          ASSERT_TRUE(std::holds_alternative<resp::Staged>(r));
          EXPECT_EQ(std::get<resp::Staged>(r).inserts, 1u);
          r = roundtrip(codec, client, req::Insert{tenant, u, 23, 0.5});
          ASSERT_TRUE(std::holds_alternative<resp::Staged>(r));
          EXPECT_EQ(std::get<resp::Staged>(r).inserts, 2u);
          staged_total += 2;
          r = roundtrip(codec, client, req::Apply{tenant});
          ASSERT_TRUE(std::holds_alternative<resp::Applied>(r));
          if (round % 2 == 0) {
            r = roundtrip(codec, client, req::Solve{tenant, 0, 24});
            ASSERT_TRUE(std::holds_alternative<resp::Solved>(r));
          } else {
            r = roundtrip(codec, client, req::Checkpoint{tenant, ck});
            ASSERT_TRUE(std::holds_alternative<resp::Checkpointed>(r));
          }
        }
        // One worker closes and re-opens its tenant mid-battery: close
        // must serialize with the other commands, and the name frees up.
        if (c == 0) {
          r = roundtrip(codec, client, req::Close{tenant});
          ASSERT_TRUE(std::holds_alternative<resp::Closed>(r));
          r = roundtrip(codec, client, req::Open{tenant, test_mtx(), fast_spec()});
          ASSERT_TRUE(std::holds_alternative<resp::Opened>(r));
          staged_total = 0;
        }
        // Per-tenant ordering invariant: exactly the inserts this thread
        // staged were offered, in order, with nothing lost or duplicated.
        r = roundtrip(codec, client, req::Metrics{tenant});
        ASSERT_TRUE(std::holds_alternative<resp::MetricsOut>(r));
        const ServingMetrics m = std::get<resp::MetricsOut>(r).metrics;
        EXPECT_EQ(m.counters.inserts_offered, staged_total);
        EXPECT_EQ(m.busy_rejections, 0u);
        // And the tenant's sparsifier still meets its kappa budget.
        r = roundtrip(codec, client, req::Kappa{tenant});
        ASSERT_TRUE(std::holds_alternative<resp::KappaOut>(r));
        EXPECT_LE(std::get<resp::KappaOut>(r).value,
                  std::get<resp::KappaOut>(r).target);
      } catch (const std::exception& e) {
        ADD_FAILURE() << "client " << c << ": " << e.what();
        failures.fetch_add(1);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);
  server.stop();
}

TEST(ServeConcurrentTcp, SharedTenantTrafficLosesNothing) {
  constexpr int kClients = 3;
  constexpr int kRounds = 6;
  TestServer server;

  // Open the shared tenant first so workers race only on traffic.
  {
    BinaryCodec codec;
    TcpClient opener(server.port);
    ASSERT_TRUE(std::holds_alternative<resp::Opened>(
        roundtrip(codec, opener, req::Open{"shared", test_mtx(), fast_spec()})));
  }

  std::atomic<std::uint64_t> staged_acks{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  for (int c = 0; c < kClients; ++c) {
    workers.emplace_back([&, c] {
      try {
        BinaryCodec codec;
        TcpClient client(server.port);
        for (int round = 0; round < kRounds; ++round) {
          const NodeId u = static_cast<NodeId>((round * kClients + c) % 24);
          const Response staged =
              roundtrip(codec, client, req::Insert{"shared", u, 24, 0.5});
          ASSERT_TRUE(std::holds_alternative<resp::Staged>(staged));
          staged_acks.fetch_add(1);
          ASSERT_TRUE(std::holds_alternative<resp::Applied>(
              roundtrip(codec, client, req::Apply{"shared"})));
          ASSERT_TRUE(std::holds_alternative<resp::Solved>(
              roundtrip(codec, client, req::Solve{"shared", 0, 24})));
        }
      } catch (const std::exception& e) {
        ADD_FAILURE() << "client " << c << ": " << e.what();
        failures.fetch_add(1);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);

  // Every acknowledged stage was applied exactly once, whoever's apply
  // (or flushing read) carried it.
  BinaryCodec codec;
  TcpClient reader(server.port);
  const Response metrics = roundtrip(codec, reader, req::Metrics{"shared"});
  ASSERT_TRUE(std::holds_alternative<resp::MetricsOut>(metrics));
  EXPECT_EQ(std::get<resp::MetricsOut>(metrics).metrics.counters.inserts_offered,
            staged_acks.load());
  server.stop();
}

// ---------------------------------------------------------------------------
// Backpressure

TEST(ServeConcurrentTcp, FloodPastStagedCapYieldsBusyNotAHang) {
  EngineOptions eopts;
  eopts.max_staged = 8;
  TestServer server(eopts);

  BinaryCodec codec;
  TcpClient client(server.port);
  ASSERT_TRUE(std::holds_alternative<resp::Opened>(
      roundtrip(codec, client, req::Open{"", test_mtx(), fast_spec()})));

  int staged = 0;
  int busy = 0;
  for (int i = 0; i < 20; ++i) {
    const NodeId u = static_cast<NodeId>(i % 24);
    const Response r = roundtrip(codec, client, req::Insert{"", u, 24, 1.0});
    if (std::holds_alternative<resp::Staged>(r)) {
      ++staged;
    } else {
      ASSERT_TRUE(std::holds_alternative<resp::Busy>(r)) << "response " << i;
      EXPECT_EQ(std::get<resp::Busy>(r).what, "staged");
      EXPECT_EQ(std::get<resp::Busy>(r).limit, 8u);
      ++busy;
    }
  }
  EXPECT_EQ(staged, 8);
  EXPECT_EQ(busy, 12);

  // The flood neither wedged the tenant nor corrupted it: apply drains
  // the capped batch, the rejection count is visible, and staging works
  // again afterwards.
  ASSERT_TRUE(std::holds_alternative<resp::Applied>(
      roundtrip(codec, client, req::Apply{""})));
  const Response metrics = roundtrip(codec, client, req::Metrics{""});
  ASSERT_TRUE(std::holds_alternative<resp::MetricsOut>(metrics));
  const ServingMetrics m = std::get<resp::MetricsOut>(metrics).metrics;
  EXPECT_EQ(m.counters.inserts_offered, 8u);
  EXPECT_EQ(m.busy_rejections, 12u);
  ASSERT_TRUE(std::holds_alternative<resp::Staged>(
      roundtrip(codec, client, req::Insert{"", 3, 7, 1.0})));
  server.stop();
}

TEST(ServeConcurrentTcp, QueueCapRejectsDeterministically) {
  // Deterministic saturation: the opener blocks inside `open` reading its
  // graph from a FIFO (holding the tenant's command lock), one helper
  // queues behind it, and the second helper must be refused — max_queued
  // is 1, so the executing open plus one waiter is the whole budget.
  const std::string fifo = scratch_path("open.fifo");
  std::remove(fifo.c_str());
  ASSERT_EQ(::mkfifo(fifo.c_str(), 0600), 0);

  EngineOptions eopts;
  eopts.max_queued = 1;
  Engine engine(eopts);

  std::thread opener([&] {
    const Response r = engine.handle(req::Open{"t", fifo, fast_spec()});
    EXPECT_TRUE(std::holds_alternative<resp::Opened>(r)) << "open failed";
  });
  // The tenant name is registered (and its command lock held) before the
  // blocking graph read begins.
  while (engine.tenants().empty()) std::this_thread::yield();

  std::atomic<int> busy_seen{0};
  std::atomic<int> ok_seen{0};
  std::vector<std::thread> helpers;
  for (int h = 0; h < 2; ++h) {
    helpers.emplace_back([&] {
      const Response r = engine.handle(req::Metrics{"t"});
      if (std::holds_alternative<resp::Busy>(r)) {
        EXPECT_EQ(std::get<resp::Busy>(r).what, "queue");
        EXPECT_EQ(std::get<resp::Busy>(r).limit, 1u);
        busy_seen.fetch_add(1);
      } else if (std::holds_alternative<resp::MetricsOut>(r)) {
        ok_seen.fetch_add(1);
      } else {
        ADD_FAILURE() << "unexpected response index " << r.index();
      }
    });
  }
  // Exactly one helper overflows the queue; wait for its refusal, then
  // feed the FIFO so the opener (and the queued helper) complete.
  while (busy_seen.load() == 0) std::this_thread::yield();
  {
    Rng rng(7);
    write_mtx_file(fifo, make_triangulated_grid(5, 5, rng));
  }
  opener.join();
  for (auto& h : helpers) h.join();
  EXPECT_EQ(busy_seen.load(), 1);
  EXPECT_EQ(ok_seen.load(), 1);

  const Response metrics = engine.handle(req::Metrics{"t"});
  ASSERT_TRUE(std::holds_alternative<resp::MetricsOut>(metrics));
  EXPECT_EQ(std::get<resp::MetricsOut>(metrics).metrics.busy_rejections, 1u);
  std::remove(fifo.c_str());
}

TEST(ServeConcurrentTcp, OverCapConnectionGetsBusyAndCloses) {
  TcpOptions topts;
  topts.max_connections = 1;
  TestServer server(EngineOptions{}, topts);

  BinaryCodec codec;
  // The first client occupies the only slot.
  TcpClient first(server.port);
  ASSERT_TRUE(std::holds_alternative<resp::Opened>(
      roundtrip(codec, first, req::Open{"", test_mtx(), fast_spec()})));

  {
    // The second client gets exactly one typed Busy response — in its own
    // codec — and then end-of-stream, not a hang.
    TcpClient second(server.port);
    codec.write_request(second.out(), req::Metrics{""});
    second.out().flush();
    const auto r = codec.read_response(second.in());
    ASSERT_TRUE(r.has_value());
    ASSERT_TRUE(std::holds_alternative<resp::Busy>(*r));
    EXPECT_EQ(std::get<resp::Busy>(*r).what, "connections");
    EXPECT_EQ(std::get<resp::Busy>(*r).limit, 1u);
    EXPECT_FALSE(codec.read_response(second.in()).has_value());
  }

  // The occupant is unaffected and can quit the server itself.
  codec.write_request(first.out(), req::Quit{});
  first.out().flush();
  const auto bye = codec.read_response(first.in());
  ASSERT_TRUE(bye.has_value());
  EXPECT_TRUE(std::holds_alternative<resp::Bye>(*bye));
  server.thread.join();
}

// ---------------------------------------------------------------------------
// Codec auto-detect for slow clients

TEST(ServeConcurrentTcp, DribbledBinaryMagicIsNotMisclassifiedAsText) {
  TestServer server;
  TcpClient client(server.port);

  // Encode one binary request and send its first bytes one at a time with
  // real gaps — the frame magic arrives across four packets. The peek
  // must wait for the full prefix instead of reading a 1-byte peek as "not
  // binary" and routing the connection to the text codec.
  BinaryCodec codec;
  std::ostringstream encoded;
  codec.write_request(encoded, req::Metrics{""});
  const std::string bytes = encoded.str();
  ASSERT_GE(bytes.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    client.out().put(bytes[i]);
    client.out().flush();
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  client.out().write(bytes.data() + 4, static_cast<std::streamsize>(bytes.size() - 4));
  client.out().flush();

  // A binary-framed response proves the codec detection: had the server
  // fallen back to text, this read would fail on the text error line.
  const auto response = codec.read_response(client.in());
  ASSERT_TRUE(response.has_value());
  ASSERT_TRUE(std::holds_alternative<resp::Error>(*response));
  EXPECT_EQ(std::get<resp::Error>(*response).message,
            "no session (use open or restore)");

  codec.write_request(client.out(), req::Quit{});
  client.out().flush();
  ASSERT_TRUE(std::holds_alternative<resp::Bye>(*codec.read_response(client.in())));
  server.thread.join();
}

}  // namespace
}  // namespace ingrass::serve
