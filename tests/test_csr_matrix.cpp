#include <gtest/gtest.h>

#include "linalg/csr_matrix.hpp"

namespace ingrass {
namespace {

CsrMatrix small_matrix() {
  // [ 2 -1  0]
  // [-1  2 -1]
  // [ 0 -1  2]
  const std::vector<CsrMatrix::Triplet> t{
      {0, 0, 2.0}, {0, 1, -1.0}, {1, 0, -1.0}, {1, 1, 2.0},
      {1, 2, -1.0}, {2, 1, -1.0}, {2, 2, 2.0},
  };
  return CsrMatrix(3, t);
}

TEST(CsrMatrix, DimensionsAndNnz) {
  const CsrMatrix m = small_matrix();
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.nnz(), 7);
}

TEST(CsrMatrix, Multiply) {
  const CsrMatrix m = small_matrix();
  const Vec x{1.0, 2.0, 3.0};
  Vec y(3);
  m.multiply(x, y);
  EXPECT_DOUBLE_EQ(y[0], 0.0);
  EXPECT_DOUBLE_EQ(y[1], 0.0);
  EXPECT_DOUBLE_EQ(y[2], 4.0);
}

TEST(CsrMatrix, MultiplyAdd) {
  const CsrMatrix m = small_matrix();
  const Vec x{1.0, 0.0, 0.0};
  Vec y{100.0, 100.0, 100.0};
  m.multiply_add(x, 1.0, y);
  EXPECT_DOUBLE_EQ(y[0], 102.0);
  EXPECT_DOUBLE_EQ(y[1], 99.0);
  EXPECT_DOUBLE_EQ(y[2], 100.0);
}

TEST(CsrMatrix, DuplicateTripletsSum) {
  const std::vector<CsrMatrix::Triplet> t{{0, 1, 1.0}, {0, 1, 2.5}, {1, 0, 3.5}};
  const CsrMatrix m(2, t);
  EXPECT_EQ(m.nnz(), 2);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 3.5);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 3.5);
}

TEST(CsrMatrix, AtReturnsZeroForEmptyPositions) {
  const CsrMatrix m = small_matrix();
  EXPECT_DOUBLE_EQ(m.at(0, 2), 0.0);
  EXPECT_THROW(static_cast<void>(m.at(0, 5)), std::out_of_range);
  EXPECT_THROW(static_cast<void>(m.at(-1, 0)), std::out_of_range);
}

TEST(CsrMatrix, Diagonal) {
  const CsrMatrix m = small_matrix();
  const Vec d = m.diagonal();
  EXPECT_EQ(d, (Vec{2.0, 2.0, 2.0}));
}

TEST(CsrMatrix, RejectsOutOfRangeTriplets) {
  const std::vector<CsrMatrix::Triplet> t{{0, 5, 1.0}};
  EXPECT_THROW(CsrMatrix(2, t), std::out_of_range);
}

TEST(CsrMatrix, EmptyMatrixZeroes) {
  const CsrMatrix m(3, {});
  const Vec x{1.0, 1.0, 1.0};
  Vec y{9.0, 9.0, 9.0};
  m.multiply(x, y);
  EXPECT_EQ(y, (Vec{0.0, 0.0, 0.0}));
}

TEST(CsrMatrix, RowsSortedByColumn) {
  const std::vector<CsrMatrix::Triplet> t{{0, 2, 1.0}, {0, 0, 2.0}, {0, 1, 3.0}};
  const CsrMatrix m(3, t);
  const auto cols = m.col_indices();
  EXPECT_EQ(cols[0], 0);
  EXPECT_EQ(cols[1], 1);
  EXPECT_EQ(cols[2], 2);
}

}  // namespace
}  // namespace ingrass
