#include <gtest/gtest.h>

#include "core/lrd_decomposition.hpp"
#include "util/rng.hpp"

namespace ingrass {
namespace {

TEST(LrdContract, MergesUnderThreshold) {
  // Path of 3 clusters with resistances 1.0 and 1.0; threshold 1.5 merges
  // one pair only (the second merge would create diameter 2.0).
  const std::vector<ClusterEdge> edges{
      {0, 1, 1.0, 1.0},
      {1, 2, 1.0, 1.0},
  };
  const std::vector<double> diam{0.0, 0.0, 0.0};
  const LrdLevel lvl = lrd_contract(3, edges, diam, 1.5);
  EXPECT_EQ(lvl.merges, 1);
  EXPECT_EQ(lvl.num_output, 2);
  // Exactly two of the three nodes share an output cluster.
  const int same01 = lvl.parent[0] == lvl.parent[1];
  const int same12 = lvl.parent[1] == lvl.parent[2];
  EXPECT_EQ(same01 + same12, 1);
}

TEST(LrdContract, LargeThresholdMergesEverything) {
  const std::vector<ClusterEdge> edges{
      {0, 1, 1.0, 1.0}, {1, 2, 2.0, 1.0}, {2, 3, 3.0, 1.0}};
  const std::vector<double> diam{0.0, 0.0, 0.0, 0.0};
  const LrdLevel lvl = lrd_contract(4, edges, diam, 100.0);
  EXPECT_EQ(lvl.num_output, 1);
  EXPECT_EQ(lvl.merges, 3);
  EXPECT_DOUBLE_EQ(lvl.diameter[0], 6.0);  // path bound 1+2+3
}

TEST(LrdContract, ZeroThresholdMergesNothing) {
  const std::vector<ClusterEdge> edges{{0, 1, 1.0, 1.0}};
  const std::vector<double> diam{0.0, 0.0};
  const LrdLevel lvl = lrd_contract(2, edges, diam, 0.5);
  EXPECT_EQ(lvl.merges, 0);
  EXPECT_EQ(lvl.num_output, 2);
  EXPECT_EQ(lvl.parent[0], 0);
  EXPECT_EQ(lvl.parent[1], 1);
}

TEST(LrdContract, LowResistanceEdgesContractFirst) {
  // Star where one spoke is much lower resistance; tight threshold admits
  // only that one.
  const std::vector<ClusterEdge> edges{
      {0, 1, 5.0, 1.0}, {0, 2, 0.1, 1.0}, {0, 3, 5.0, 1.0}};
  const std::vector<double> diam{0.0, 0.0, 0.0, 0.0};
  const LrdLevel lvl = lrd_contract(4, edges, diam, 1.0);
  EXPECT_EQ(lvl.merges, 1);
  EXPECT_EQ(lvl.parent[0], lvl.parent[2]);
  EXPECT_NE(lvl.parent[0], lvl.parent[1]);
}

TEST(LrdContract, RespectsInputDiameters) {
  // Two clusters that already carry diameter 0.8 each; edge resistance 0.5
  // gives merged bound 2.1 > threshold 2.0 -> no merge.
  const std::vector<ClusterEdge> edges{{0, 1, 0.5, 1.0}};
  const std::vector<double> diam{0.8, 0.8};
  const LrdLevel no = lrd_contract(2, edges, diam, 2.0);
  EXPECT_EQ(no.merges, 0);
  const LrdLevel yes = lrd_contract(2, edges, diam, 2.2);
  EXPECT_EQ(yes.merges, 1);
  EXPECT_DOUBLE_EQ(yes.diameter[0], 2.1);
}

TEST(LrdContract, DiameterSizeMismatchThrows) {
  const std::vector<ClusterEdge> edges{{0, 1, 1.0, 1.0}};
  const std::vector<double> diam{0.0};
  EXPECT_THROW(lrd_contract(2, edges, diam, 1.0), std::invalid_argument);
}

TEST(CoarsenEdges, DropsIntraAndRelabels) {
  const std::vector<ClusterEdge> edges{
      {0, 1, 1.0, 2.0},  // becomes intra after merging 0,1
      {1, 2, 3.0, 4.0},
  };
  LrdLevel lvl;
  lvl.parent = {0, 0, 1};
  lvl.num_output = 2;
  lvl.diameter = {1.0, 0.0};
  const auto coarse = coarsen_edges(edges, lvl);
  ASSERT_EQ(coarse.size(), 1u);
  EXPECT_EQ(coarse[0].a, 0);
  EXPECT_EQ(coarse[0].b, 1);
  EXPECT_DOUBLE_EQ(coarse[0].resistance, 3.0);
  EXPECT_DOUBLE_EQ(coarse[0].weight, 4.0);
}

TEST(CoarsenEdges, ParallelEdgesCombineAsResistors) {
  // Two parallel coarse edges with resistances 2 and 2 -> 1; weights add.
  const std::vector<ClusterEdge> edges{
      {0, 2, 2.0, 1.0},
      {1, 3, 2.0, 5.0},
  };
  LrdLevel lvl;
  lvl.parent = {0, 0, 1, 1};
  lvl.num_output = 2;
  lvl.diameter = {0.5, 0.5};
  const auto coarse = coarsen_edges(edges, lvl);
  ASSERT_EQ(coarse.size(), 1u);
  EXPECT_DOUBLE_EQ(coarse[0].resistance, 1.0);
  EXPECT_DOUBLE_EQ(coarse[0].weight, 6.0);
}

TEST(CoarsenEdges, DeterministicOrdering) {
  const std::vector<ClusterEdge> edges{
      {3, 1, 1.0, 1.0}, {0, 2, 1.0, 1.0}, {1, 0, 1.0, 1.0}};
  LrdLevel lvl;
  lvl.parent = {0, 1, 2, 3};
  lvl.num_output = 4;
  lvl.diameter = {0, 0, 0, 0};
  const auto coarse = coarsen_edges(edges, lvl);
  ASSERT_EQ(coarse.size(), 3u);
  for (std::size_t i = 0; i + 1 < coarse.size(); ++i) {
    EXPECT_TRUE(coarse[i].a < coarse[i + 1].a ||
                (coarse[i].a == coarse[i + 1].a && coarse[i].b < coarse[i + 1].b));
  }
}

TEST(LrdContract, PaperFigure2Shape) {
  // A 14-node sparsifier shaped like Fig. 2: contract with growing
  // thresholds and verify the cluster count shrinks monotonically to 1.
  std::vector<ClusterEdge> edges;
  Rng rng(7);
  for (NodeId v = 0; v + 1 < 14; ++v) {
    edges.push_back({v, v + 1, rng.uniform(0.5, 1.5), 1.0});
  }
  edges.push_back({0, 7, 2.0, 1.0});
  edges.push_back({3, 10, 2.0, 1.0});

  NodeId n = 14;
  std::vector<double> diam(14, 0.0);
  double threshold = 1.0;
  NodeId prev = n;
  for (int level = 0; level < 12 && n > 1; ++level) {
    const LrdLevel lvl = lrd_contract(n, edges, diam, threshold);
    if (lvl.merges > 0) {
      const auto coarse = coarsen_edges(edges, lvl);
      edges.assign(coarse.begin(), coarse.end());
      diam = lvl.diameter;
      n = lvl.num_output;
      EXPECT_LT(n, prev);
      prev = n;
    }
    threshold *= 2.0;
  }
  EXPECT_EQ(n, 1);
}

}  // namespace
}  // namespace ingrass
