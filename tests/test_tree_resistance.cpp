#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "spectral/effective_resistance.hpp"
#include "tree/spanning_tree.hpp"
#include "tree/tree_resistance.hpp"

namespace ingrass {
namespace {

TEST(TreeResistance, PathIsSeriesSum) {
  Graph g(4);
  std::vector<EdgeId> edges;
  edges.push_back(g.add_edge(0, 1, 2.0));
  edges.push_back(g.add_edge(1, 2, 4.0));
  edges.push_back(g.add_edge(2, 3, 1.0));
  const TreePathResistance tr(g, edges);
  EXPECT_NEAR(tr.resistance(0, 3), 0.5 + 0.25 + 1.0, 1e-12);
  EXPECT_NEAR(tr.resistance(1, 2), 0.25, 1e-12);
  EXPECT_DOUBLE_EQ(tr.resistance(2, 2), 0.0);
}

TEST(TreeResistance, SymmetricQueries) {
  Rng rng(1);
  const Graph g = make_triangulated_grid(6, 6, rng);
  const auto forest = max_weight_spanning_forest(g);
  const TreePathResistance tr(g, forest);
  EXPECT_DOUBLE_EQ(tr.resistance(3, 30), tr.resistance(30, 3));
}

TEST(TreeResistance, MatchesOracleOnTreeGraph) {
  // When the graph *is* the tree, tree-path resistance equals effective
  // resistance exactly.
  Rng rng(2);
  Graph tree(30);
  std::vector<EdgeId> edges;
  for (NodeId v = 1; v < 30; ++v) {
    const auto p = static_cast<NodeId>(rng.uniform_index(static_cast<std::uint64_t>(v)));
    edges.push_back(tree.add_edge(p, v, rng.uniform(0.5, 3.0)));
  }
  const TreePathResistance tr(tree, edges);
  const EffectiveResistanceOracle oracle(tree);
  Rng prng(3);
  for (int i = 0; i < 50; ++i) {
    const auto u = static_cast<NodeId>(prng.uniform_index(30));
    const auto v = static_cast<NodeId>(prng.uniform_index(30));
    EXPECT_NEAR(tr.resistance(u, v), oracle.resistance(u, v), 1e-6)
        << u << "," << v;
  }
}

TEST(TreeResistance, UpperBoundsTrueResistance) {
  // Rayleigh monotonicity: the tree is a subgraph, so its path resistance
  // dominates the full graph's effective resistance.
  Rng rng(4);
  const Graph g = make_triangulated_grid(7, 7, rng);
  const auto forest = max_weight_spanning_forest(g);
  const TreePathResistance tr(g, forest);
  const EffectiveResistanceOracle oracle(g);
  for (EdgeId e = 0; e < g.num_edges(); e += 11) {
    const Edge& edge = g.edge(e);
    EXPECT_GE(tr.resistance(edge.u, edge.v) + 1e-9, oracle.resistance(edge.u, edge.v));
  }
}

TEST(TreeResistance, DistortionDefinition) {
  Graph g(3);
  std::vector<EdgeId> edges;
  edges.push_back(g.add_edge(0, 1, 2.0));
  edges.push_back(g.add_edge(1, 2, 2.0));
  const TreePathResistance tr(g, edges);
  Edge off;
  off.u = 0;
  off.v = 2;
  off.w = 3.0;
  EXPECT_NEAR(tr.distortion(off), 3.0 * (0.5 + 0.5), 1e-12);
}

TEST(TreeResistance, CrossComponentInfinite) {
  Graph g(4);
  std::vector<EdgeId> edges;
  edges.push_back(g.add_edge(0, 1, 1.0));
  edges.push_back(g.add_edge(2, 3, 1.0));
  const TreePathResistance tr(g, edges);
  EXPECT_TRUE(std::isinf(tr.resistance(0, 3)));
}

}  // namespace
}  // namespace ingrass
