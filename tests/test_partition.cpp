#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/generators.hpp"
#include "graph/partition.hpp"

namespace ingrass {
namespace {

Graph mesh(int side = 16, std::uint64_t seed = 5) {
  Rng rng(seed);
  return make_triangulated_grid(static_cast<NodeId>(side), static_cast<NodeId>(side), rng);
}

TEST(Partition, HashCoversAllShards) {
  const Partition p = hash_partition(1000, 8);
  ASSERT_EQ(p.num_nodes(), 1000);
  ASSERT_EQ(p.shards, 8);
  std::vector<int> sizes(8, 0);
  for (const NodeId s : p.shard_of) {
    ASSERT_GE(s, 0);
    ASSERT_LT(s, 8);
    ++sizes[static_cast<std::size_t>(s)];
  }
  for (const int size : sizes) EXPECT_GT(size, 0);
}

TEST(Partition, HashIsDeterministic) {
  const Partition a = hash_partition(256, 4);
  const Partition b = hash_partition(256, 4);
  EXPECT_EQ(a.shard_of, b.shard_of);
}

TEST(Partition, GreedyIsBalancedAndComplete) {
  const Graph g = mesh();
  const Partition p = greedy_partition(g, 4);
  ASSERT_EQ(p.num_nodes(), g.num_nodes());
  const CutStats s = cut_stats(g, p);
  EXPECT_GT(s.smallest_shard, 0);
  // The multiplicative block rule balances to within one node.
  EXPECT_LE(s.largest_shard - s.smallest_shard, 1);
}

TEST(Partition, GreedyNeverLeavesShardsEmptyOnAwkwardSizes) {
  // ceil-sized blocks would exhaust 9 nodes in 3 shards and leave the
  // 4th empty; every (n, k) with k <= n must yield k non-empty shards.
  for (const auto& [n, k] : std::vector<std::pair<NodeId, int>>{
           {9, 4}, {10, 4}, {13, 4}, {5, 5}, {7, 3}, {100, 7}}) {
    Graph path(n);
    for (NodeId u = 0; u + 1 < n; ++u) path.add_edge(u, u + 1, 1.0);
    const Partition p = greedy_partition(path, k);
    const CutStats s = cut_stats(path, p);
    EXPECT_GT(s.smallest_shard, 0) << "n=" << n << " k=" << k;
    EXPECT_LE(s.largest_shard - s.smallest_shard, 1) << "n=" << n << " k=" << k;
  }
}

TEST(Partition, GreedyCutBeatsHashOnMeshes) {
  const Graph g = mesh(24);
  const CutStats greedy = cut_stats(g, greedy_partition(g, 4));
  const CutStats hash = cut_stats(g, hash_partition(g.num_nodes(), 4));
  // BFS blocks are topological balls; hashing stripes the mesh and cuts
  // the bulk of the edges.
  EXPECT_LT(greedy.cut_edges, hash.cut_edges / 2);
}

TEST(Partition, GreedyCoversDisconnectedGraphs) {
  Graph g(6);  // two triangles, no connection
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(0, 2, 1.0);
  g.add_edge(3, 4, 1.0);
  g.add_edge(4, 5, 1.0);
  g.add_edge(3, 5, 1.0);
  const Partition p = greedy_partition(g, 2);
  std::set<NodeId> seen(p.shard_of.begin(), p.shard_of.end());
  EXPECT_EQ(seen.size(), 2u);  // both shards used, every node assigned
  const CutStats s = cut_stats(g, p);
  EXPECT_EQ(s.largest_shard, 3);
  EXPECT_EQ(s.smallest_shard, 3);
}

TEST(Partition, CutStatsCountsCrossShardEdges) {
  Graph g(4);  // a path 0-1-2-3
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.5);
  g.add_edge(2, 3, 1.0);
  Partition p;
  p.shards = 2;
  p.shard_of = {0, 0, 1, 1};
  const CutStats s = cut_stats(g, p);
  EXPECT_EQ(s.cut_edges, 1);
  EXPECT_DOUBLE_EQ(s.cut_weight, 2.5);
}

TEST(Partition, SingleShardHasNoCut) {
  const Graph g = mesh(8);
  const CutStats s = cut_stats(g, greedy_partition(g, 1));
  EXPECT_EQ(s.cut_edges, 0);
  EXPECT_EQ(s.largest_shard, g.num_nodes());
}

TEST(Partition, RejectsBadArguments) {
  const Graph g = mesh(4);
  EXPECT_THROW(hash_partition(10, 0), std::invalid_argument);
  EXPECT_THROW(greedy_partition(g, -1), std::invalid_argument);
  Partition wrong;
  wrong.shards = 2;
  wrong.shard_of = {0, 1};  // size mismatch
  EXPECT_THROW((void)cut_stats(g, wrong), std::invalid_argument);
  Partition out_of_range;
  out_of_range.shards = 2;
  out_of_range.shard_of.assign(static_cast<std::size_t>(g.num_nodes()), 0);
  out_of_range.shard_of[3] = 5;  // shard id beyond [0, shards)
  EXPECT_THROW((void)cut_stats(g, out_of_range), std::invalid_argument);
}

}  // namespace
}  // namespace ingrass
