#include <gtest/gtest.h>

#include "core/edge_stream.hpp"
#include "core/ingrass.hpp"
#include "graph/generators.hpp"
#include "solver/sparsifier_solver.hpp"
#include "sparsify/grass.hpp"
#include "spectral/laplacian.hpp"

namespace ingrass {
namespace {

struct Fixture {
  Graph g;
  Graph h;
  Vec b;
  Fixture() {
    Rng rng(1);
    g = make_triangulated_grid(18, 18, rng);
    GrassOptions opts;
    opts.target_offtree_density = 0.10;
    h = grass_sparsify(g, opts).sparsifier;
    b.resize(static_cast<std::size_t>(g.num_nodes()));
    Rng brng(2);
    randomize(b, brng);
    project_out_ones(b);
  }
};

TEST(SparsifierSolver, SolvesToTolerance) {
  Fixture f;
  const SparsifierSolver solver(f.g, f.h);
  Vec x(f.b.size(), 0.0);
  const auto r = solver.solve(f.b, x);
  ASSERT_TRUE(r.converged);
  // Verify the residual independently.
  const CsrAdjacency csr = build_csr(f.g);
  Vec ax(x.size());
  laplacian_operator(csr)(x, ax);
  EXPECT_LT(rel_diff(ax, f.b), 1e-6);
}

TEST(SparsifierSolver, FewerOuterIterationsThanJacobiCg) {
  // The point of a sparsifier preconditioner: outer iterations track
  // sqrt(kappa(G,H)) instead of the Laplacian's own condition number.
  Fixture f;
  const SparsifierSolver solver(f.g, f.h);
  Vec x(f.b.size(), 0.0);
  const auto with_sparsifier = solver.solve(f.b, x);

  const CsrAdjacency csr = build_csr(f.g);
  const JacobiPreconditioner jac{Vec(csr.degree)};
  CgOptions plain;
  plain.project_nullspace = true;
  plain.rel_tol = 1e-8;
  Vec y(f.b.size(), 0.0);
  const CgResult jacobi_only = pcg(laplacian_operator(csr), f.b, y, &jac, plain);

  ASSERT_TRUE(with_sparsifier.converged);
  ASSERT_TRUE(jacobi_only.converged);
  EXPECT_LT(with_sparsifier.outer_iterations, jacobi_only.iterations);
}

TEST(SparsifierSolver, IdenticalSparsifierConvergesAlmostImmediately) {
  Fixture f;
  const SparsifierSolver solver(f.g, f.g);  // H = G: perfect preconditioner
  Vec x(f.b.size(), 0.0);
  const auto r = solver.solve(f.b, x);
  ASSERT_TRUE(r.converged);
  EXPECT_LE(r.outer_iterations, 6);
}

TEST(SparsifierSolver, UpdateSparsifierImprovesAfterStream) {
  // The downstream payoff of inGRASS: after a stream, solving with the
  // maintained sparsifier needs no more iterations than with the stale one.
  Fixture f;
  Ingrass::Options iopts;
  iopts.target_condition = 60.0;
  Ingrass ing{Graph(f.h), iopts};
  EdgeStreamOptions sopts;
  sopts.total_per_node = 0.24;
  const auto batches = make_edge_stream(f.g, sopts);
  Graph g = f.g;
  for (const auto& batch : batches) {
    for (const Edge& e : batch) g.add_or_merge_edge(e.u, e.v, e.w);
    ing.insert_edges(batch);
  }
  Vec b(static_cast<std::size_t>(g.num_nodes()));
  Rng brng(5);
  randomize(b, brng);
  project_out_ones(b);

  SparsifierSolver stale(g, f.h);
  SparsifierSolver maintained(g, ing.sparsifier());
  Vec x1(b.size(), 0.0), x2(b.size(), 0.0);
  const auto rs = stale.solve(b, x1);
  const auto rm = maintained.solve(b, x2);
  ASSERT_TRUE(rs.converged);
  ASSERT_TRUE(rm.converged);
  EXPECT_LE(rm.outer_iterations, rs.outer_iterations + 2);
}

TEST(SparsifierSolver, UpdateSparsifierApiRefreshes) {
  Fixture f;
  SparsifierSolver solver(f.g, f.h);
  solver.update_sparsifier(f.g);  // now exact
  Vec x(f.b.size(), 0.0);
  const auto r = solver.solve(f.b, x);
  ASSERT_TRUE(r.converged);
  EXPECT_LE(r.outer_iterations, 6);
}

TEST(SparsifierSolver, WeightsOnlyRefreshMatchesFullRebuild) {
  Fixture f;
  SparsifierSolver incremental(f.g, f.h);

  // Weights-only mutation of H: the refresh path must reuse the CSR
  // pattern and behave exactly like a freshly constructed solver.
  Graph h2 = f.h;
  for (EdgeId e = 0; e < h2.num_edges(); e += 3) h2.scale_weight(e, 1.5);
  incremental.update_sparsifier(h2);
  const SparsifierSolver fresh(f.g, h2);

  Vec xi(f.b.size(), 0.0), xf(f.b.size(), 0.0);
  const auto ri = incremental.solve(f.b, xi);
  const auto rf = fresh.solve(f.b, xf);
  ASSERT_TRUE(ri.converged);
  ASSERT_TRUE(rf.converged);
  EXPECT_EQ(ri.outer_iterations, rf.outer_iterations);
  for (std::size_t i = 0; i < xi.size(); ++i) EXPECT_DOUBLE_EQ(xi[i], xf[i]);
}

TEST(SparsifierSolver, DualUpdateTracksEvolvingOriginalGraph) {
  Fixture f;
  SparsifierSolver solver(f.g, f.h);

  // The session path: G gains edges (pattern change) and H is reweighted
  // (weights-only) — update() must refresh both sides.
  Graph g2 = f.g;
  g2.add_edge(0, g2.num_nodes() - 1, 4.0);
  g2.add_edge(3, g2.num_nodes() - 7, 2.0);
  Graph h2 = f.h;
  h2.scale_weight(0, 2.0);
  solver.update(g2, h2);
  const SparsifierSolver fresh(g2, h2);

  Vec xu(f.b.size(), 0.0), xf(f.b.size(), 0.0);
  const auto ru = solver.solve(f.b, xu);
  const auto rf = fresh.solve(f.b, xf);
  ASSERT_TRUE(ru.converged);
  ASSERT_TRUE(rf.converged);
  for (std::size_t i = 0; i < xu.size(); ++i) EXPECT_DOUBLE_EQ(xu[i], xf[i]);

  Graph other(5);
  EXPECT_THROW(solver.update(other, h2), std::invalid_argument);
}

TEST(SparsifierSolver, ZeroRhsAndErrors) {
  Fixture f;
  const SparsifierSolver solver(f.g, f.h);
  Vec zero(f.b.size(), 0.0);
  Vec x(f.b.size(), 3.0);
  const auto r = solver.solve(zero, x);
  EXPECT_TRUE(r.converged);

  Graph other(5);
  EXPECT_THROW(SparsifierSolver(f.g, other), std::invalid_argument);
  Vec wrong(7, 0.0);
  EXPECT_THROW(solver.solve(wrong, wrong), std::invalid_argument);
}

}  // namespace
}  // namespace ingrass
