#include <gtest/gtest.h>

#include <set>

#include "util/env.hpp"
#include "util/parse.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace ingrass {
namespace {

TEST(Parse, FullTokenLong) {
  EXPECT_EQ(parse_full_long("42"), 42);
  EXPECT_EQ(parse_full_long("-7"), -7);
  EXPECT_FALSE(parse_full_long("").has_value());
  EXPECT_FALSE(parse_full_long("4x").has_value());
  EXPECT_FALSE(parse_full_long("x4").has_value());
  EXPECT_FALSE(parse_full_long("4.5").has_value());
}

TEST(Parse, FullTokenDouble) {
  EXPECT_EQ(parse_full_double("1.5"), 1.5);
  EXPECT_EQ(parse_full_double("-2e3"), -2000.0);
  EXPECT_FALSE(parse_full_double("").has_value());
  EXPECT_FALSE(parse_full_double("1.5zz").has_value());
  EXPECT_FALSE(parse_full_double("abc").has_value());
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1'000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIndexCoversRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1'000; ++i) seen.insert(rng.uniform_index(8));
  EXPECT_EQ(seen.size(), 8u);
  EXPECT_EQ(*seen.rbegin(), 7u);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NormalHasUnitishMoments) {
  Rng rng(17);
  RunningStats s;
  for (int i = 0; i < 50'000; ++i) s.add(rng.normal());
  EXPECT_NEAR(s.mean(), 0.0, 0.03);
  EXPECT_NEAR(s.stddev(), 1.0, 0.03);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(19);
  RunningStats s;
  for (int i = 0; i < 50'000; ++i) s.add(rng.exponential(2.0));
  EXPECT_NEAR(s.mean(), 0.5, 0.02);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto w = v;
  shuffle(w, rng);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (const double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
}

TEST(RunningStats, EmptyIsSafe) {
  const RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Percentile, InterpolatesLinearly) {
  const std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 0.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 10.0);
}

TEST(Percentile, EmptyAndSingleton) {
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
  EXPECT_DOUBLE_EQ(percentile({3.0}, 99), 3.0);
}

TEST(Timer, MeasuresForwardTime) {
  const Timer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 100'000; ++i) sink = sink + 1.0;
  EXPECT_GE(t.seconds(), 0.0);
}

TEST(AccumTimer, SumsIntervals) {
  AccumTimer t;
  t.start();
  t.stop();
  t.start();
  t.stop();
  EXPECT_GE(t.seconds(), 0.0);
  t.reset();
  EXPECT_EQ(t.seconds(), 0.0);
}

TEST(FormatSeconds, PaperStyleRanges) {
  EXPECT_EQ(format_seconds(196.0), "196 s");
  EXPECT_EQ(format_seconds(1.7), "1.70 s");
  EXPECT_EQ(format_seconds(0.053), "0.053 s");
}

TEST(TableFormat, CountsAndPercents) {
  EXPECT_EQ(format_count(1.5e6), "1.5E+6");
  EXPECT_EQ(format_count(0.0), "0");
  EXPECT_EQ(format_pct(0.105), "10.5%");
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("| name"), std::string::npos);
  EXPECT_NE(s.find("| longer"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Env, FallbacksWhenUnset) {
  EXPECT_DOUBLE_EQ(env_double("INGRASS_DEFINITELY_UNSET_VAR", 2.5), 2.5);
  EXPECT_EQ(env_long("INGRASS_DEFINITELY_UNSET_VAR", 9), 9);
  EXPECT_EQ(env_string("INGRASS_DEFINITELY_UNSET_VAR", "x"), "x");
}

TEST(Env, ParsesSetValues) {
  ::setenv("INGRASS_TEST_VAR", "3.5", 1);
  EXPECT_DOUBLE_EQ(env_double("INGRASS_TEST_VAR", 0.0), 3.5);
  ::setenv("INGRASS_TEST_VAR", "42", 1);
  EXPECT_EQ(env_long("INGRASS_TEST_VAR", 0), 42);
  ::unsetenv("INGRASS_TEST_VAR");
}

TEST(RelErr, ZeroDenominatorGuard) {
  EXPECT_GT(rel_err(1.0, 0.0), 1e20);
  EXPECT_DOUBLE_EQ(rel_err(2.0, 2.0), 0.0);
}

}  // namespace
}  // namespace ingrass
