// The epoll transport (TcpOptions::event_loop) and its codec state
// machine. Three layers:
//
//   - FrameAssembler unit tests: incremental text/binary decode, the
//     dribbled-magic hold, header validation before any payload wait,
//     fatal-vs-recoverable errors.
//   - nofile_capacity_warning: the RLIMIT_NOFILE capacity check.
//   - Event-loop TCP battery: the PR-5 thread-per-connection semantics
//     (simultaneous progress, per-tenant arrival order, typed
//     backpressure, over-cap busy, dribbled magic, quit-from-any-client)
//     re-proven against the readiness loop, plus adversarial framing the
//     loop alone must survive: slow-loris byte-at-a-time frames across
//     100 interleaved connections, mid-frame disconnects, oversized
//     length headers, and deep pipelining.
//
// These run under the ASan/UBSan and TSan presets in CI.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <limits>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "graph/generators.hpp"
#include "graph/mtx_io.hpp"
#include "serve/protocol.hpp"
#include "serve/transport.hpp"
#include "util/rng.hpp"

namespace ingrass::serve {
namespace {

/// Per-process scratch file: ctest runs cases as concurrent processes, so
/// every artifact must be process-unique or cases cross-talk.
std::string scratch_path(const std::string& name) {
  static const std::string pid = std::to_string(::getpid());
  return testing::TempDir() + "/ingrass_evl_" + pid + "_" + name;
}

/// A small connected test graph on disk, shared by every server test.
const std::string& test_mtx() {
  static const std::string path = [] {
    Rng rng(7);
    const Graph g = make_triangulated_grid(5, 5, rng);
    const std::string p = scratch_path("grid.mtx");
    write_mtx_file(p, g);
    return p;
  }();
  return path;
}

SessionSpec fast_spec() {
  SessionSpec spec;
  spec.density = 0.3;
  spec.target = 100.0;
  spec.grass_target = 40.0;
  spec.sync = true;  // deterministic rebuilds
  return spec;
}

/// Encode one request in the binary framing.
std::string encode_request(const Request& request) {
  BinaryCodec codec;
  std::ostringstream out;
  codec.write_request(out, request);
  return std::move(out).str();
}

/// A hand-built binary frame header (magic + version + length, little
/// endian) for adversarial-framing cases.
std::string frame_header(std::uint32_t version, std::uint32_t length) {
  std::string h(kBinaryFrameMagic, 4);
  const auto put32 = [&h](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) h.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  };
  put32(version);
  put32(length);
  return h;
}

// ---------------------------------------------------------------------------
// FrameAssembler

TEST(FrameAssembler, BinaryRequestInOneFeed) {
  FrameAssembler a;
  const std::string bytes = encode_request(req::Insert{"t", 3, 7, 1.5});
  a.feed(bytes.data(), bytes.size());
  const auto request = a.next();
  ASSERT_TRUE(request.has_value());
  ASSERT_TRUE(std::holds_alternative<req::Insert>(*request));
  const auto& insert = std::get<req::Insert>(*request);
  EXPECT_EQ(insert.name, "t");
  EXPECT_EQ(insert.u, 3);
  EXPECT_EQ(insert.v, 7);
  EXPECT_DOUBLE_EQ(insert.w, 1.5);
  EXPECT_EQ(a.wire(), WireFormat::kBinary);
  EXPECT_EQ(a.buffered(), 0u);
  EXPECT_FALSE(a.next().has_value());
}

TEST(FrameAssembler, BinaryByteAtATime) {
  FrameAssembler a;
  const std::string bytes = encode_request(req::Metrics{"m"});
  for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
    a.feed(&bytes[i], 1);
    EXPECT_FALSE(a.next().has_value()) << "byte " << i;
  }
  a.feed(&bytes[bytes.size() - 1], 1);
  const auto request = a.next();
  ASSERT_TRUE(request.has_value());
  EXPECT_TRUE(std::holds_alternative<req::Metrics>(*request));
}

TEST(FrameAssembler, DribbledMagicHoldsTheCodecDecisionOpen) {
  FrameAssembler a;
  // 1..3 bytes of the magic must neither decode nor classify as text.
  for (std::size_t i = 0; i < 3; ++i) {
    a.feed(&kBinaryFrameMagic[i], 1);
    EXPECT_FALSE(a.next().has_value());
    EXPECT_EQ(a.wire(), WireFormat::kUndecided) << "after byte " << i;
  }
  a.feed(&kBinaryFrameMagic[3], 1);
  EXPECT_FALSE(a.next().has_value());  // header incomplete, but decided
  EXPECT_EQ(a.wire(), WireFormat::kBinary);
}

TEST(FrameAssembler, NonMagicPrefixDecidesTextImmediately) {
  FrameAssembler a;
  a.feed("me", 2);  // diverges from the magic at the first byte
  EXPECT_FALSE(a.next().has_value());  // no newline yet
  EXPECT_EQ(a.wire(), WireFormat::kText);
  const std::string rest = "trics\n";
  a.feed(rest.data(), rest.size());
  const auto request = a.next();
  ASSERT_TRUE(request.has_value());
  ASSERT_TRUE(std::holds_alternative<req::Metrics>(*request));
  EXPECT_TRUE(std::get<req::Metrics>(*request).name.empty());
}

TEST(FrameAssembler, TextSkipsBlankAndCommentLines) {
  FrameAssembler a;
  const std::string bytes = "# warm-up comment\n\n   \nmetrics\n";
  a.feed(bytes.data(), bytes.size());
  const auto request = a.next();
  ASSERT_TRUE(request.has_value());
  EXPECT_TRUE(std::holds_alternative<req::Metrics>(*request));
  EXPECT_FALSE(a.next().has_value());
}

TEST(FrameAssembler, TextBadCommandIsRecoverable) {
  FrameAssembler a;
  const std::string bytes = "frobnicate\nmetrics\n";
  a.feed(bytes.data(), bytes.size());
  EXPECT_THROW((void)a.next(), ProtocolError);
  EXPECT_FALSE(a.dead());  // a bad line costs one err, not the connection
  const auto request = a.next();
  ASSERT_TRUE(request.has_value());
  EXPECT_TRUE(std::holds_alternative<req::Metrics>(*request));
}

TEST(FrameAssembler, TwoFramesInOneFeedDecodeInOrder) {
  FrameAssembler a;
  const std::string bytes =
      encode_request(req::Insert{"t", 1, 2, 1.0}) + encode_request(req::Apply{"t"});
  a.feed(bytes.data(), bytes.size());
  const auto first = a.next();
  ASSERT_TRUE(first.has_value());
  EXPECT_TRUE(std::holds_alternative<req::Insert>(*first));
  const auto second = a.next();
  ASSERT_TRUE(second.has_value());
  EXPECT_TRUE(std::holds_alternative<req::Apply>(*second));
  EXPECT_FALSE(a.next().has_value());
}

TEST(FrameAssembler, ImplausibleLengthIsFatalAtTheHeader) {
  FrameAssembler a;
  // Twelve header bytes claiming a payload past the frame cap: the reject
  // must happen now — no waiting for (or allocating) the claimed payload.
  const std::string head =
      frame_header(kBinaryFrameVersion, static_cast<std::uint32_t>(kMaxFrameBytes) + 1);
  a.feed(head.data(), head.size());
  EXPECT_THROW((void)a.next(), ProtocolError);
  EXPECT_TRUE(a.dead());
  // Dead assemblers ignore further input instead of buffering it.
  const std::string more(1024, 'x');
  a.feed(more.data(), more.size());
  EXPECT_EQ(a.buffered(), head.size());
  EXPECT_FALSE(a.next().has_value());
}

TEST(FrameAssembler, WrongVersionIsFatal) {
  FrameAssembler a;
  const std::string head = frame_header(kBinaryFrameVersion + 9, 4);
  a.feed(head.data(), head.size());
  try {
    (void)a.next();
    FAIL() << "expected ProtocolError";
  } catch (const ProtocolError& e) {
    EXPECT_TRUE(e.fatal());
    EXPECT_NE(std::string(e.what()).find("unsupported version"), std::string::npos);
  }
  EXPECT_TRUE(a.dead());
}

TEST(FrameAssembler, OverlongTextLineWithoutNewlineIsFatal) {
  FrameAssembler a;
  const std::string chunk(kMaxFrameBytes / 4 + 1, 'a');
  for (int i = 0; i < 4; ++i) a.feed(chunk.data(), chunk.size());
  EXPECT_THROW((void)a.next(), ProtocolError);
  EXPECT_TRUE(a.dead());
}

// ---------------------------------------------------------------------------
// RLIMIT_NOFILE capacity check

TEST(NofileCapacity, ImpossibleCapacityWarnsAndTinyCapacityDoesNot) {
  // No process gets INT_MAX descriptors; the warning must name the limit
  // and the shed behavior so the operator knows what will happen.
  const auto warning =
      nofile_capacity_warning(std::numeric_limits<int>::max());
  ASSERT_TRUE(warning.has_value());
  EXPECT_NE(warning->find("RLIMIT_NOFILE"), std::string::npos);
  EXPECT_NE(warning->find("busy connections"), std::string::npos);
  // A one-connection server fits any real limit.
  EXPECT_FALSE(nofile_capacity_warning(1).has_value());
}

// ---------------------------------------------------------------------------
// Event-loop TCP battery

/// One serve_tcp server in --event-loop mode on an ephemeral port.
struct EventTestServer {
  explicit EventTestServer(EngineOptions eopts = {}, TcpOptions topts = {})
      : engine(eopts) {
    static std::atomic<int> counter{0};
    const std::string port_file =
        scratch_path("port_" + std::to_string(counter.fetch_add(1)) + ".txt");
    std::remove(port_file.c_str());
    topts.port_file = port_file;
    topts.event_loop = true;
    thread = std::thread([this, topts] { serve_tcp(engine, topts); });
    port = wait_for_port_file(port_file);
  }

  /// Send a quit on a fresh connection and join the server.
  void stop() {
    BinaryCodec codec;
    TcpClient client(port);
    codec.write_request(client.out(), req::Quit{});
    client.out().flush();
    (void)codec.read_response(client.in());
    thread.join();
  }

  ~EventTestServer() {
    if (!thread.joinable()) return;
    try {
      stop();
    } catch (...) {
      thread.detach();
    }
  }

  Engine engine;
  std::thread thread;
  std::uint16_t port = 0;
};

/// Send one request and read its response over an established client.
Response roundtrip(BinaryCodec& codec, TcpClient& client, const Request& request) {
  codec.write_request(client.out(), request);
  client.out().flush();
  const auto response = codec.read_response(client.in());
  if (!response) throw std::runtime_error("server closed the connection");
  return *response;
}

TEST(ServeEventLoop, BasicBinarySessionRoundtrips) {
  EventTestServer server;
  BinaryCodec codec;
  TcpClient client(server.port);
  ASSERT_TRUE(std::holds_alternative<resp::Opened>(
      roundtrip(codec, client, req::Open{"t", test_mtx(), fast_spec()})));
  ASSERT_TRUE(std::holds_alternative<resp::Staged>(
      roundtrip(codec, client, req::Insert{"t", 0, 24, 1.0})));
  ASSERT_TRUE(std::holds_alternative<resp::Applied>(
      roundtrip(codec, client, req::Apply{"t"})));
  const Response solved = roundtrip(codec, client, req::Solve{"t", 0, 24});
  ASSERT_TRUE(std::holds_alternative<resp::Solved>(solved));
  EXPECT_GT(std::get<resp::Solved>(solved).resistance, 0.0);
  server.stop();
}

TEST(ServeEventLoop, TextClientSpeaksTheLineProtocol) {
  EventTestServer server;
  TcpClient client(server.port);
  client.out() << "metrics\n" << std::flush;
  std::string line;
  ASSERT_TRUE(static_cast<bool>(std::getline(client.in(), line)));
  EXPECT_EQ(line, "err no session (use open or restore)");
  // The same connection stays serviceable after the err.
  client.out() << "open " << test_mtx() << " --name t --sync\n" << std::flush;
  ASSERT_TRUE(static_cast<bool>(std::getline(client.in(), line)));
  EXPECT_EQ(line.rfind("ok open", 0), 0u) << line;
  server.stop();
}

TEST(ServeEventLoop, SecondClientCompletesWhileFirstHoldsItsConnection) {
  EventTestServer server;
  BinaryCodec codec;

  TcpClient a(server.port);
  ASSERT_TRUE(std::holds_alternative<resp::Opened>(
      roundtrip(codec, a, req::Open{"a", test_mtx(), fast_spec()})));

  {
    TcpClient b(server.port);
    ASSERT_TRUE(std::holds_alternative<resp::Opened>(
        roundtrip(codec, b, req::Open{"b", test_mtx(), fast_spec()})));
    ASSERT_TRUE(std::holds_alternative<resp::Staged>(
        roundtrip(codec, b, req::Insert{"b", 0, 24, 1.0})));
    ASSERT_TRUE(std::holds_alternative<resp::Applied>(
        roundtrip(codec, b, req::Apply{"b"})));
    const Response solved = roundtrip(codec, b, req::Solve{"b", 0, 24});
    ASSERT_TRUE(std::holds_alternative<resp::Solved>(solved));
  }

  const Response solved = roundtrip(codec, a, req::Solve{"a", 0, 24});
  ASSERT_TRUE(std::holds_alternative<resp::Solved>(solved));
  server.stop();
}

TEST(ServeEventLoop, ManyClientsInterleaveWithPerTenantArrivalOrder) {
  constexpr int kClients = 4;
  constexpr int kRounds = 4;
  EventTestServer server;

  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  for (int c = 0; c < kClients; ++c) {
    workers.emplace_back([&, c] {
      const std::string suffix = std::to_string(c);
      const std::string tenant = "t" + suffix;
      try {
        BinaryCodec codec;
        TcpClient client(server.port);
        Response r = roundtrip(codec, client, req::Open{tenant, test_mtx(), fast_spec()});
        ASSERT_TRUE(std::holds_alternative<resp::Opened>(r));
        std::uint64_t staged_total = 0;
        for (int round = 0; round < kRounds; ++round) {
          // Two stages then an apply: the Staged counts (1 then 2, reset
          // by the apply) prove per-tenant arrival-order execution under
          // the lane dispatcher, untouched by other tenants' traffic.
          const NodeId u = static_cast<NodeId>((round * 3 + c) % 24);
          r = roundtrip(codec, client, req::Insert{tenant, u, 24, 1.0});
          ASSERT_TRUE(std::holds_alternative<resp::Staged>(r));
          EXPECT_EQ(std::get<resp::Staged>(r).inserts, 1u);
          r = roundtrip(codec, client, req::Insert{tenant, u, 23, 0.5});
          ASSERT_TRUE(std::holds_alternative<resp::Staged>(r));
          EXPECT_EQ(std::get<resp::Staged>(r).inserts, 2u);
          staged_total += 2;
          r = roundtrip(codec, client, req::Apply{tenant});
          ASSERT_TRUE(std::holds_alternative<resp::Applied>(r));
          r = roundtrip(codec, client, req::Solve{tenant, 0, 24});
          ASSERT_TRUE(std::holds_alternative<resp::Solved>(r));
        }
        r = roundtrip(codec, client, req::Metrics{tenant});
        ASSERT_TRUE(std::holds_alternative<resp::MetricsOut>(r));
        const ServingMetrics m = std::get<resp::MetricsOut>(r).metrics;
        EXPECT_EQ(m.counters.inserts_offered, staged_total);
        EXPECT_EQ(m.busy_rejections, 0u);
      } catch (const std::exception& e) {
        ADD_FAILURE() << "client " << c << ": " << e.what();
        failures.fetch_add(1);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);
  server.stop();
}

TEST(ServeEventLoop, SharedTenantTrafficLosesNothing) {
  constexpr int kClients = 3;
  constexpr int kRounds = 6;
  EventTestServer server;

  {
    BinaryCodec codec;
    TcpClient opener(server.port);
    ASSERT_TRUE(std::holds_alternative<resp::Opened>(
        roundtrip(codec, opener, req::Open{"shared", test_mtx(), fast_spec()})));
  }

  std::atomic<std::uint64_t> staged_acks{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  for (int c = 0; c < kClients; ++c) {
    workers.emplace_back([&, c] {
      try {
        BinaryCodec codec;
        TcpClient client(server.port);
        for (int round = 0; round < kRounds; ++round) {
          const NodeId u = static_cast<NodeId>((round * kClients + c) % 24);
          const Response staged =
              roundtrip(codec, client, req::Insert{"shared", u, 24, 0.5});
          ASSERT_TRUE(std::holds_alternative<resp::Staged>(staged));
          staged_acks.fetch_add(1);
          ASSERT_TRUE(std::holds_alternative<resp::Applied>(
              roundtrip(codec, client, req::Apply{"shared"})));
          ASSERT_TRUE(std::holds_alternative<resp::Solved>(
              roundtrip(codec, client, req::Solve{"shared", 0, 24})));
        }
      } catch (const std::exception& e) {
        ADD_FAILURE() << "client " << c << ": " << e.what();
        failures.fetch_add(1);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);

  BinaryCodec codec;
  TcpClient reader(server.port);
  const Response metrics = roundtrip(codec, reader, req::Metrics{"shared"});
  ASSERT_TRUE(std::holds_alternative<resp::MetricsOut>(metrics));
  EXPECT_EQ(std::get<resp::MetricsOut>(metrics).metrics.counters.inserts_offered,
            staged_acks.load());
  server.stop();
}

TEST(ServeEventLoop, FloodPastStagedCapYieldsBusyNotAHang) {
  EngineOptions eopts;
  eopts.max_staged = 8;
  EventTestServer server(eopts);

  BinaryCodec codec;
  TcpClient client(server.port);
  ASSERT_TRUE(std::holds_alternative<resp::Opened>(
      roundtrip(codec, client, req::Open{"", test_mtx(), fast_spec()})));

  int staged = 0;
  int busy = 0;
  for (int i = 0; i < 20; ++i) {
    const NodeId u = static_cast<NodeId>(i % 24);
    const Response r = roundtrip(codec, client, req::Insert{"", u, 24, 1.0});
    if (std::holds_alternative<resp::Staged>(r)) {
      ++staged;
    } else {
      ASSERT_TRUE(std::holds_alternative<resp::Busy>(r)) << "response " << i;
      EXPECT_EQ(std::get<resp::Busy>(r).what, "staged");
      EXPECT_EQ(std::get<resp::Busy>(r).limit, 8u);
      ++busy;
    }
  }
  EXPECT_EQ(staged, 8);
  EXPECT_EQ(busy, 12);

  ASSERT_TRUE(std::holds_alternative<resp::Applied>(
      roundtrip(codec, client, req::Apply{""})));
  const Response metrics = roundtrip(codec, client, req::Metrics{""});
  ASSERT_TRUE(std::holds_alternative<resp::MetricsOut>(metrics));
  const ServingMetrics m = std::get<resp::MetricsOut>(metrics).metrics;
  EXPECT_EQ(m.counters.inserts_offered, 8u);
  EXPECT_EQ(m.busy_rejections, 12u);
  ASSERT_TRUE(std::holds_alternative<resp::Staged>(
      roundtrip(codec, client, req::Insert{"", 3, 7, 1.0})));
  server.stop();
}

TEST(ServeEventLoop, PipelineFloodPastQueueCapGetsTypedBusy) {
  // A pipelining client fires a burst of applies without reading: the
  // lane executes max_queued of them and refuses the rest O(1), with the
  // refusals visible in the tenant's metrics — enforced at the loop (the
  // pool never sees the excess), matching with_tenant's bound.
  EngineOptions eopts;
  eopts.max_queued = 2;
  EventTestServer server(eopts);

  BinaryCodec codec;
  TcpClient client(server.port);
  ASSERT_TRUE(std::holds_alternative<resp::Opened>(
      roundtrip(codec, client, req::Open{"", test_mtx(), fast_spec()})));

  constexpr int kBurst = 12;
  for (int i = 0; i < kBurst; ++i) {
    codec.write_request(client.out(), req::Apply{""});
  }
  client.out().flush();

  int applied = 0;
  int busy = 0;
  for (int i = 0; i < kBurst; ++i) {
    const auto r = codec.read_response(client.in());
    ASSERT_TRUE(r.has_value()) << "response " << i;
    if (std::holds_alternative<resp::Applied>(*r)) {
      ++applied;
    } else {
      ASSERT_TRUE(std::holds_alternative<resp::Busy>(*r)) << "response " << i;
      EXPECT_EQ(std::get<resp::Busy>(*r).what, "queue");
      EXPECT_EQ(std::get<resp::Busy>(*r).limit, 2u);
      ++busy;
    }
  }
  // Timing decides the exact split, but the cap guarantees refusals for a
  // burst this deep, and nothing may be lost or duplicated.
  EXPECT_EQ(applied + busy, kBurst);
  EXPECT_GE(busy, 1);
  EXPECT_GE(applied, 1);

  const Response metrics = roundtrip(codec, client, req::Metrics{""});
  ASSERT_TRUE(std::holds_alternative<resp::MetricsOut>(metrics));
  EXPECT_EQ(std::get<resp::MetricsOut>(metrics).metrics.busy_rejections,
            static_cast<std::uint64_t>(busy));
  server.stop();
}

TEST(ServeEventLoop, DeepPipelineReturnsResponsesInRequestOrder) {
  EventTestServer server;
  BinaryCodec codec;
  TcpClient client(server.port);
  ASSERT_TRUE(std::holds_alternative<resp::Opened>(
      roundtrip(codec, client, req::Open{"t", test_mtx(), fast_spec()})));

  // A burst of inserts without reading: the Staged counts must come back
  // 1..N — arrival-order execution AND request-order responses, however
  // the pool interleaves.
  constexpr int kBurst = 16;
  for (int i = 0; i < kBurst; ++i) {
    codec.write_request(client.out(),
                        req::Insert{"t", static_cast<NodeId>(i % 24), 24, 1.0});
  }
  client.out().flush();
  for (int i = 0; i < kBurst; ++i) {
    const auto r = codec.read_response(client.in());
    ASSERT_TRUE(r.has_value()) << "response " << i;
    ASSERT_TRUE(std::holds_alternative<resp::Staged>(*r)) << "response " << i;
    EXPECT_EQ(std::get<resp::Staged>(*r).inserts, static_cast<std::uint64_t>(i + 1));
  }
  ASSERT_TRUE(std::holds_alternative<resp::Applied>(
      roundtrip(codec, client, req::Apply{"t"})));

  // And a burst of solves (the overlapping command) still answers one
  // Solved per request on the same connection.
  constexpr int kSolves = 6;
  for (int i = 0; i < kSolves; ++i) {
    codec.write_request(client.out(), req::Solve{"t", 0, 24});
  }
  client.out().flush();
  for (int i = 0; i < kSolves; ++i) {
    const auto r = codec.read_response(client.in());
    ASSERT_TRUE(r.has_value()) << "solve " << i;
    ASSERT_TRUE(std::holds_alternative<resp::Solved>(*r)) << "solve " << i;
  }
  server.stop();
}

TEST(ServeEventLoop, OverCapConnectionGetsBusyAndCloses) {
  TcpOptions topts;
  topts.max_connections = 1;
  EventTestServer server(EngineOptions{}, topts);

  BinaryCodec codec;
  TcpClient first(server.port);
  ASSERT_TRUE(std::holds_alternative<resp::Opened>(
      roundtrip(codec, first, req::Open{"", test_mtx(), fast_spec()})));

  {
    // The second client gets exactly one typed Busy — in its own codec —
    // then end-of-stream, not a hang.
    TcpClient second(server.port);
    codec.write_request(second.out(), req::Metrics{""});
    second.out().flush();
    const auto r = codec.read_response(second.in());
    ASSERT_TRUE(r.has_value());
    ASSERT_TRUE(std::holds_alternative<resp::Busy>(*r));
    EXPECT_EQ(std::get<resp::Busy>(*r).what, "connections");
    EXPECT_EQ(std::get<resp::Busy>(*r).limit, 1u);
    EXPECT_FALSE(codec.read_response(second.in()).has_value());
  }

  // The occupant is unaffected and can quit the server itself.
  codec.write_request(first.out(), req::Quit{});
  first.out().flush();
  const auto bye = codec.read_response(first.in());
  ASSERT_TRUE(bye.has_value());
  EXPECT_TRUE(std::holds_alternative<resp::Bye>(*bye));
  server.thread.join();
}

TEST(ServeEventLoop, DribbledBinaryMagicIsNotMisclassifiedAsText) {
  EventTestServer server;
  TcpClient client(server.port);

  BinaryCodec codec;
  const std::string bytes = encode_request(req::Metrics{""});
  ASSERT_GE(bytes.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    client.out().put(bytes[i]);
    client.out().flush();
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  client.out().write(bytes.data() + 4, static_cast<std::streamsize>(bytes.size() - 4));
  client.out().flush();

  const auto response = codec.read_response(client.in());
  ASSERT_TRUE(response.has_value());
  ASSERT_TRUE(std::holds_alternative<resp::Error>(*response));
  EXPECT_EQ(std::get<resp::Error>(*response).message,
            "no session (use open or restore)");

  codec.write_request(client.out(), req::Quit{});
  client.out().flush();
  ASSERT_TRUE(std::holds_alternative<resp::Bye>(*codec.read_response(client.in())));
  server.thread.join();
}

TEST(ServeEventLoop, QuitFromAnyClientStopsTheWholeServer) {
  EventTestServer server;
  BinaryCodec codec;

  TcpClient holder(server.port);
  ASSERT_TRUE(std::holds_alternative<resp::Opened>(
      roundtrip(codec, holder, req::Open{"h", test_mtx(), fast_spec()})));

  {
    TcpClient quitter(server.port);
    codec.write_request(quitter.out(), req::Quit{});
    quitter.out().flush();
    const auto bye = codec.read_response(quitter.in());
    ASSERT_TRUE(bye.has_value());
    EXPECT_TRUE(std::holds_alternative<resp::Bye>(*bye));
  }
  server.thread.join();
  // The holder's connection was shut down by the stop, not wedged.
  EXPECT_FALSE(codec.read_response(holder.in()).has_value());
}

TEST(ServeEventLoop, MidFrameDisconnectLeavesTheServerHealthy) {
  EventTestServer server;

  {
    // Half a binary frame, then a close mid-payload.
    TcpClient partial(server.port);
    const std::string bytes = encode_request(req::Metrics{""});
    partial.out().write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 3));
    partial.out().flush();
  }
  {
    // Half a text line (no newline), then a close.
    TcpClient partial(server.port);
    partial.out() << "metri" << std::flush;
  }

  // A full session still completes afterwards.
  BinaryCodec codec;
  TcpClient client(server.port);
  ASSERT_TRUE(std::holds_alternative<resp::Opened>(
      roundtrip(codec, client, req::Open{"t", test_mtx(), fast_spec()})));
  ASSERT_TRUE(std::holds_alternative<resp::Solved>(
      roundtrip(codec, client, req::Solve{"t", 0, 24})));
  server.stop();
}

TEST(ServeEventLoop, OversizedLengthHeaderIsRefusedWithErrThenEof) {
  EventTestServer server;
  BinaryCodec codec;
  TcpClient client(server.port);

  const std::string head =
      frame_header(kBinaryFrameVersion, static_cast<std::uint32_t>(kMaxFrameBytes) + 1);
  client.out().write(head.data(), static_cast<std::streamsize>(head.size()));
  client.out().flush();

  // One typed err naming the refusal, then end-of-stream — the server
  // must not wait for (or buffer toward) the claimed payload.
  const auto r = codec.read_response(client.in());
  ASSERT_TRUE(r.has_value());
  ASSERT_TRUE(std::holds_alternative<resp::Error>(*r));
  EXPECT_NE(std::get<resp::Error>(*r).message.find("implausible length"),
            std::string::npos);
  EXPECT_FALSE(codec.read_response(client.in()).has_value());
  server.stop();
}

// ---------------------------------------------------------------------------
// Slow loris

/// A raw blocking loopback socket (no FdStreamBuf buffering — the test
/// controls every byte on the wire). A positive `rcvbuf` shrinks
/// SO_RCVBUF before connecting, so a test can make the server's sends
/// back up (EAGAIN) with a small number of responses.
struct RawConn {
  explicit RawConn(std::uint16_t port, int rcvbuf = 0) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw std::runtime_error("RawConn: socket() failed");
    if (rcvbuf > 0) {
      (void)::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof rcvbuf);
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
      ::close(fd);
      fd = -1;
      throw std::runtime_error("RawConn: connect() failed");
    }
  }
  RawConn(RawConn&& other) noexcept : fd(other.fd) { other.fd = -1; }
  RawConn& operator=(RawConn&&) = delete;
  ~RawConn() {
    if (fd >= 0) ::close(fd);
  }
  void send_byte(char byte) const {
    ASSERT_EQ(::send(fd, &byte, 1, MSG_NOSIGNAL), 1);
  }
  void send_all(const std::string& bytes) const {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n =
          ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
      ASSERT_GT(n, 0) << "send failed after " << off << " of " << bytes.size();
      off += static_cast<std::size_t>(n);
    }
  }
  /// Blocking read of exactly `n` bytes.
  void read_exact(char* out, std::size_t n) const {
    std::size_t got = 0;
    while (got < n) {
      const ssize_t r = ::recv(fd, out + got, n - got, 0);
      ASSERT_GT(r, 0) << "peer closed after " << got << " of " << n << " bytes";
      got += static_cast<std::size_t>(r);
    }
  }
  int fd = -1;
};

std::uint32_t le32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

TEST(ServeEventLoop, SlowLorisHundredInterleavedByteAtATimeConnections) {
  // 100 connections, all dribbling the same binary request one byte at a
  // time, interleaved round-robin from a single thread: every partial
  // frame sits buffered in its own assembler, no connection blocks any
  // other, and every client gets its complete, uncorrupted response.
  constexpr int kConns = 100;
  TcpOptions topts;
  topts.max_connections = kConns + 2;
  EventTestServer server(EngineOptions{}, topts);

  const std::string bytes = encode_request(req::Metrics{""});
  std::vector<RawConn> conns;
  conns.reserve(kConns);
  for (int i = 0; i < kConns; ++i) conns.emplace_back(server.port);

  for (std::size_t b = 0; b < bytes.size(); ++b) {
    for (const RawConn& conn : conns) conn.send_byte(bytes[b]);
  }

  // Each response is one well-formed binary frame: magic, version, a
  // sane length, and a complete payload.
  for (const RawConn& conn : conns) {
    char head[12];
    conn.read_exact(head, sizeof head);
    EXPECT_EQ(std::memcmp(head, kBinaryFrameMagic, 4), 0);
    EXPECT_EQ(le32(head + 4), kBinaryFrameVersion);
    const std::uint32_t length = le32(head + 8);
    ASSERT_LE(length, kMaxFrameBytes);
    std::vector<char> payload(length);
    conn.read_exact(payload.data(), payload.size());
  }
  conns.clear();
  server.stop();
}

// ---------------------------------------------------------------------------
// Read-backpressure resume
//
// The pipelining cap (max_pipelined, 64) pauses EPOLLIN; the pause must
// release through flush_writes — the one point every slot-draining path
// reaches — not only through pool completions. Both regressions below
// wedged permanently when the resume lived in the pool-completion path:
// a burst of malformed lines completes every slot on the loop thread, so
// no pool completion ever arrives.

/// Read '\n'-terminated lines with a poll(2) deadline, so a wedged server
/// fails the test instead of hanging it.
struct LineReader {
  explicit LineReader(const RawConn& conn) : fd(conn.fd) {}
  std::optional<std::string> read_line(long timeout_ms = 10000) {
    for (;;) {
      const std::size_t nl = buf.find('\n');
      if (nl != std::string::npos) {
        std::string line = buf.substr(0, nl);
        buf.erase(0, nl + 1);
        return line;
      }
      pollfd pfd{fd, POLLIN, 0};
      if (::poll(&pfd, 1, static_cast<int>(timeout_ms)) <= 0) return std::nullopt;
      char chunk[16384];
      const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
      if (n <= 0) return std::nullopt;
      buf.append(chunk, static_cast<std::size_t>(n));
    }
  }
  int fd;
  std::string buf;
};

TEST(ServeEventLoop, MalformedBurstPastThePipelineCapDoesNotWedgeReading) {
  // 96 bad lines (> max_pipelined) plus one valid command, pipelined in
  // one burst: the first 64 err slots all complete locally, tripping the
  // pause with the rest of the burst sitting undecoded in the assembler.
  // Every response — including the post-burst command's — must still
  // arrive.
  EventTestServer server;
  RawConn conn(server.port);
  constexpr int kBad = 96;
  std::string burst;
  for (int i = 0; i < kBad; ++i) burst += "bogus" + std::to_string(i) + "\n";
  burst += "metrics\n";
  conn.send_all(burst);

  LineReader reader(conn);
  for (int i = 0; i < kBad; ++i) {
    const auto line = reader.read_line();
    ASSERT_TRUE(line.has_value()) << "reading wedged before err " << i;
    EXPECT_EQ(line->rfind("err unknown command: bogus", 0), 0u) << *line;
  }
  const auto tail = reader.read_line();
  ASSERT_TRUE(tail.has_value()) << "reading wedged before the post-burst command";
  EXPECT_EQ(*tail, "err no session (use open or restore)");
  server.stop();
}

TEST(ServeEventLoop, SlowReadingFlooderResumesThroughTheEpolloutDrain) {
  // A flooder pipelines malformed lines without reading: the err
  // responses echo the bad token, so with a pinned SO_SNDBUF (no kernel
  // autotuning) and a tiny client SO_RCVBUF the server's sends hit
  // EAGAIN, the pipelining pause trips with part of the burst still
  // undecoded, and every completed slot completed locally. When the
  // client finally drains, the backlog leaves through the EPOLLOUT ->
  // flush_writes path — which must run the resume check, or the rest of
  // the burst never decodes.
  TcpOptions topts;
  topts.sndbuf = 16 * 1024;
  EventTestServer server(EngineOptions{}, topts);
  RawConn conn(server.port, /*rcvbuf=*/4096);
  constexpr int kBad = 96;  // surplus past the cap stays modest so the
                            // unread burst tail fits kernel buffers
  const std::string junk(2048, 'x');
  std::string burst;
  for (int i = 0; i < kBad; ++i) burst += junk + "\n";
  burst += "metrics\n";
  conn.send_all(burst);

  LineReader reader(conn);
  for (int i = 0; i < kBad; ++i) {
    const auto line = reader.read_line(20000);
    ASSERT_TRUE(line.has_value()) << "reading wedged before err " << i;
    EXPECT_EQ(line->rfind("err unknown command: xxxx", 0), 0u) << "line " << i;
  }
  const auto tail = reader.read_line(20000);
  ASSERT_TRUE(tail.has_value()) << "reading wedged before the post-burst command";
  EXPECT_EQ(*tail, "err no session (use open or restore)");
  server.stop();
}

}  // namespace
}  // namespace ingrass::serve
