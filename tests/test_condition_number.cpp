#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/ops.hpp"
#include "spectral/condition_number.hpp"

namespace ingrass {
namespace {

TEST(ConditionNumber, IdenticalGraphsGiveOne) {
  Rng rng(1);
  const Graph g = make_grid2d(8, 8, rng);
  const double kappa = condition_number(g, g);
  EXPECT_NEAR(kappa, 1.0, 0.02);
}

TEST(ConditionNumber, ScalingInvariant) {
  // L_H = alpha L_G has the same pencil eigenvalue everywhere -> kappa = 1.
  Rng rng(2);
  const Graph g = make_grid2d(8, 8, rng);
  const Graph h = scaled_copy(g, 0.25);
  EXPECT_NEAR(condition_number(g, h), 1.0, 0.02);
}

TEST(ConditionNumber, CycleVsPathScalesWithN) {
  // Dropping one edge from an unweighted N-cycle gives kappa ~= N
  // (lambda_max = 1 + w R_path = N, lambda_min = 1).
  for (const NodeId n : {8, 16, 32}) {
    Graph cycle(n);
    for (NodeId v = 0; v < n; ++v) cycle.add_edge(v, (v + 1) % n, 1.0);
    Graph path(n);
    for (NodeId v = 0; v + 1 < n; ++v) path.add_edge(v, v + 1, 1.0);
    const ConditionNumberResult r = relative_condition_number(cycle, path);
    EXPECT_NEAR(r.kappa, static_cast<double>(n), 0.12 * n) << "n=" << n;
  }
}

TEST(ConditionNumber, LambdaBoundsForSubgraphSparsifier) {
  // H subset of G with identical weights: x^T L_H x <= x^T L_G x, so
  // lambda_min >= 1 of the pencil (L_G, L_H).
  Rng rng(3);
  const Graph g = make_triangulated_grid(8, 8, rng);
  // Drop the diagonals (every third edge roughly) but keep connectivity:
  std::vector<EdgeId> keep;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& edge = g.edge(e);
    const bool diagonal = (edge.v - edge.u != 1) && (edge.v - edge.u != 8);
    if (!diagonal) keep.push_back(e);
  }
  const Graph h = subgraph(g, keep);
  const ConditionNumberResult r = relative_condition_number(g, h);
  EXPECT_GE(r.lambda_min, 0.95);  // tolerance for the iterative estimate
  EXPECT_GT(r.lambda_max, 1.0);
  EXPECT_GE(r.kappa, r.lambda_max / r.lambda_min - 1e-9);
}

TEST(ConditionNumber, MonotoneUnderEdgeRemovalFromH) {
  // Removing off-tree edges from H can only worsen (increase) kappa.
  Rng rng(4);
  const Graph g = make_triangulated_grid(7, 7, rng);
  std::vector<EdgeId> all;
  for (EdgeId e = 0; e < g.num_edges(); ++e) all.push_back(e);
  // h1: drop ~20% of diagonals; h2: drop ~all diagonals.
  std::vector<EdgeId> keep1, keep2;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& edge = g.edge(e);
    const bool diagonal = (edge.v - edge.u != 1) && (edge.v - edge.u != 7);
    if (!diagonal || e % 5 == 0) keep1.push_back(e);
    if (!diagonal) keep2.push_back(e);
  }
  const double k1 = condition_number(g, subgraph(g, keep1));
  const double k2 = condition_number(g, subgraph(g, keep2));
  EXPECT_LE(k1, k2 * 1.10);  // allow estimator slack
}

TEST(ConditionNumber, MismatchedNodeSetsThrow) {
  Rng rng(5);
  const Graph g = make_grid2d(4, 4, rng);
  const Graph h = make_grid2d(5, 4, rng);
  EXPECT_THROW(static_cast<void>(condition_number(g, h)), std::invalid_argument);
}

TEST(ConditionNumber, DisconnectedInputThrows) {
  Rng rng(6);
  const Graph g = make_grid2d(4, 4, rng);
  Graph h(16);
  h.add_edge(0, 1, 1.0);  // disconnected sparsifier
  EXPECT_THROW(static_cast<void>(condition_number(g, h)), std::invalid_argument);
}

TEST(ConditionNumber, ReportsIterationCounts) {
  Rng rng(7);
  const Graph g = make_grid2d(6, 6, rng);
  const ConditionNumberResult r = relative_condition_number(g, g);
  EXPECT_GT(r.iterations_max, 0);
  EXPECT_GT(r.iterations_min, 0);
}

}  // namespace
}  // namespace ingrass
