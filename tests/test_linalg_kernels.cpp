// Differential battery for the raw-speed solve-path kernels: the banded
// SpMV, the fused CG vector ops, and the fp32 preconditioner are each
// checked against naive scalar references over seeded random inputs.
//
// Tolerances are derived, not guessed:
//  * SpMV row error is bounded by nnz_row * eps * sum_j |a_ij||x_j|
//    (standard forward error of a reordered dot product); the test allows
//    a small constant times that bound.
//  * Fused reductions differ from the sequential dot only by summation
//    reassociation, bounded by n * eps * sum |terms|.
//  * The fp32 preconditioner's deviation from an identical fp64 algorithm
//    is bounded by C * kappa(L) * eps_f32 relative, with kappa estimated
//    in-test via power iteration (lambda_max) and inverse iteration
//    through pcg (lambda_2).
// Parallel variants must be *bit-identical* to serial — that is an API
// contract, so those checks are exact EXPECT_EQ.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "linalg/cg.hpp"
#include "linalg/csr_matrix.hpp"
#include "linalg/precond32.hpp"
#include "linalg/vector_ops.hpp"
#include "spectral/laplacian.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace ingrass {
namespace {

constexpr double kEps64 = std::numeric_limits<double>::epsilon();
constexpr double kEps32 = std::numeric_limits<float>::epsilon();

/// Random n-by-n CSR with expected `row_nnz` entries per row. Rows 0 and
/// (when present) n/2 are forced empty so the empty-row path is always
/// exercised; values and x are O(1) so error bounds stay interpretable.
CsrMatrix random_csr(std::int32_t n, int row_nnz, Rng& rng) {
  std::vector<CsrMatrix::Triplet> t;
  for (std::int32_t r = 0; r < n; ++r) {
    if (r == 0 || (n > 4 && r == n / 2)) continue;  // forced empty rows
    for (int k = 0; k < row_nnz; ++k) {
      const auto c = static_cast<std::int32_t>(rng.uniform_index(static_cast<std::uint64_t>(n)));
      t.push_back({r, c, rng.normal()});
    }
  }
  return CsrMatrix(n, t);
}

Vec random_vec(std::size_t n, Rng& rng) {
  Vec x(n);
  randomize(x, rng);
  return x;
}

/// Naive scalar reference SpMV: strictly sequential accumulation per row,
/// plus the per-row error bound nnz_row * eps * sum |a||x|.
void reference_multiply(const CsrMatrix& m, const Vec& x, Vec& y, Vec& bound) {
  const auto offsets = m.row_offsets();
  const auto cols = m.col_indices();
  const auto vals = m.values();
  for (std::int32_t r = 0; r < m.rows(); ++r) {
    double s = 0.0;
    double abs_sum = 0.0;
    for (std::int64_t k = offsets[static_cast<std::size_t>(r)];
         k < offsets[static_cast<std::size_t>(r) + 1]; ++k) {
      const double term = vals[static_cast<std::size_t>(k)] *
                          x[static_cast<std::size_t>(cols[static_cast<std::size_t>(k)])];
      s += term;
      abs_sum += std::abs(term);
    }
    const auto nnz_row = static_cast<double>(offsets[static_cast<std::size_t>(r) + 1] -
                                             offsets[static_cast<std::size_t>(r)]);
    y[static_cast<std::size_t>(r)] = s;
    bound[static_cast<std::size_t>(r)] = 4.0 * nnz_row * kEps64 * abs_sum;
  }
}

TEST(KernelSpmv, MatchesScalarReferenceAcrossShapes) {
  Rng rng(7);
  for (const std::int32_t n : {0, 1, 2, 3, 5, 17, 64, 257, 1000}) {
    for (const int row_nnz : {1, 3, 9}) {
      const CsrMatrix m = random_csr(n, row_nnz, rng);
      const Vec x = random_vec(static_cast<std::size_t>(n), rng);
      Vec y(static_cast<std::size_t>(n), -1.0);
      Vec ref(static_cast<std::size_t>(n));
      Vec bound(static_cast<std::size_t>(n));
      m.multiply(x, y);
      reference_multiply(m, x, ref, bound);
      for (std::size_t i = 0; i < ref.size(); ++i) {
        EXPECT_LE(std::abs(y[i] - ref[i]), bound[i])
            << "n=" << n << " row_nnz=" << row_nnz << " row=" << i;
      }
    }
  }
}

TEST(KernelSpmv, EmptyRowsProduceExactZero) {
  Rng rng(11);
  const CsrMatrix m = random_csr(40, 4, rng);
  const Vec x = random_vec(40, rng);
  Vec y(40, 99.0);
  m.multiply(x, y);
  EXPECT_EQ(y[0], 0.0);    // row 0 forced empty
  EXPECT_EQ(y[20], 0.0);   // row n/2 forced empty
}

TEST(KernelSpmv, SingleRowMatrix) {
  const std::vector<CsrMatrix::Triplet> t{{0, 0, 2.5}};
  const CsrMatrix m(1, t);
  const Vec x{4.0};
  Vec y(1);
  m.multiply(x, y);
  EXPECT_DOUBLE_EQ(y[0], 10.0);
}

TEST(KernelSpmv, PooledMultiplyBitIdenticalToSerial) {
  Rng rng(13);
  // Large enough that the nnz-balanced banding yields several bands.
  const CsrMatrix m = random_csr(3000, 6, rng);
  const Vec x = random_vec(3000, rng);
  Vec serial(3000);
  m.multiply(x, serial);
  for (const int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    Vec pooled(3000, -7.0);
    m.multiply(x, pooled, &pool);
    EXPECT_EQ(pooled, serial) << "threads=" << threads;
  }
  Vec nullp(3000, -7.0);
  m.multiply(x, nullp, nullptr);
  EXPECT_EQ(nullp, serial);
}

TEST(KernelSpmv, MultiplyAddMatchesReferenceWithBeta) {
  Rng rng(17);
  const CsrMatrix m = random_csr(120, 5, rng);
  const Vec x = random_vec(120, rng);
  Vec y0 = random_vec(120, rng);
  Vec y = y0;
  m.multiply_add(x, 0.75, y);
  Vec ref(120), bound(120);
  reference_multiply(m, x, ref, bound);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    const double want = ref[i] + 0.75 * y0[i];
    EXPECT_LE(std::abs(y[i] - want), bound[i] + 4.0 * kEps64 * std::abs(want));
  }
}

TEST(KernelLaplacian, PooledOperatorBitIdenticalToSerial) {
  Rng rng(19);
  const Graph g = make_triangulated_grid(40, 40, rng);
  const CsrAdjacency csr = build_csr(g);
  const LinOp serial_op = laplacian_operator(csr);
  const Vec x = random_vec(static_cast<std::size_t>(g.num_nodes()), rng);
  Vec serial(x.size());
  serial_op(x, serial);
  for (const int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    const LinOp pooled_op = laplacian_operator(csr, &pool);
    Vec pooled(x.size(), -3.0);
    pooled_op(x, pooled);
    EXPECT_EQ(pooled, serial) << "threads=" << threads;
  }
}

// ---------------------------------------------------------------------------
// Fused vector kernels vs their composed counterparts.

/// Reassociation bound for a reduction over `terms`: n * eps * sum|term|.
template <typename T>
double reassoc_bound(const std::vector<T>& v, double eps) {
  double abs_sum = 0.0;
  for (const T t : v) abs_sum += std::abs(static_cast<double>(t)) *
                                 std::abs(static_cast<double>(t));
  return 4.0 * static_cast<double>(v.size()) * eps * abs_sum;
}

TEST(KernelFused, AxpyNorm2MatchesComposed) {
  Rng rng(23);
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                              std::size_t{5}, std::size_t{17}, std::size_t{1024}}) {
    const Vec x = random_vec(n, rng);
    Vec y_fused = random_vec(n, rng);
    Vec y_ref = y_fused;
    const double alpha = 0.37;
    const double fused = axpy_norm2(alpha, x, y_fused);
    axpy(alpha, x, y_ref);
    EXPECT_EQ(y_fused, y_ref) << "n=" << n;  // update arithmetic is identical
    const double composed = dot(y_ref, y_ref);
    EXPECT_LE(std::abs(fused - composed), reassoc_bound(y_ref, kEps64)) << "n=" << n;
  }
}

TEST(KernelFused, XpbyNorm2MatchesComposed) {
  Rng rng(29);
  for (const std::size_t n : {std::size_t{1}, std::size_t{4}, std::size_t{513}}) {
    const Vec x = random_vec(n, rng);
    Vec y_fused = random_vec(n, rng);
    Vec y_ref = y_fused;
    const double beta = -1.0;  // the initial-residual configuration
    const double fused = xpby_norm2(x, beta, y_fused);
    xpby(x, beta, y_ref);
    EXPECT_EQ(y_fused, y_ref) << "n=" << n;
    EXPECT_LE(std::abs(fused - dot(y_ref, y_ref)), reassoc_bound(y_ref, kEps64));
  }
}

TEST(KernelFused, CgFusedUpdateMatchesComposed) {
  Rng rng(31);
  for (const std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{2048}}) {
    const Vec p = random_vec(n, rng);
    const Vec ap = random_vec(n, rng);
    Vec x_fused = random_vec(n, rng);
    Vec r_fused = random_vec(n, rng);
    Vec x_ref = x_fused;
    Vec r_ref = r_fused;
    const double alpha = 1.618;
    const double fused = cg_fused_update(alpha, p, ap, x_fused, r_fused);
    axpy(alpha, p, x_ref);
    axpy(-alpha, ap, r_ref);
    // x += a*p and r -= a*ap are elementwise-identical IEEE operations in
    // both formulations, so the updated vectors must match exactly.
    EXPECT_EQ(x_fused, x_ref) << "n=" << n;
    EXPECT_EQ(r_fused, r_ref) << "n=" << n;
    EXPECT_LE(std::abs(fused - dot(r_ref, r_ref)), reassoc_bound(r_ref, kEps64));
  }
}

TEST(KernelFused, FloatOverloadsMatchComposedFloat) {
  Rng rng(37);
  const std::size_t n = 777;
  std::vector<float> x(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = static_cast<float>(rng.normal());
    y[i] = static_cast<float>(rng.normal());
  }
  std::vector<float> y_ref = y;
  const float fused = axpy_norm2(0.5f, std::span<const float>(x), std::span<float>(y));
  axpy(0.5f, std::span<const float>(x), std::span<float>(y_ref));
  EXPECT_EQ(y, y_ref);
  const float composed = dot(std::span<const float>(y_ref), std::span<const float>(y_ref));
  EXPECT_LE(std::abs(static_cast<double>(fused) - static_cast<double>(composed)),
            reassoc_bound(y_ref, kEps32));

  std::vector<float> p(n), ap(n), xx(n), r(n);
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = static_cast<float>(rng.normal());
    ap[i] = static_cast<float>(rng.normal());
    xx[i] = static_cast<float>(rng.normal());
    r[i] = static_cast<float>(rng.normal());
  }
  std::vector<float> xx_ref = xx, r_ref = r;
  const float rr = cg_fused_update(0.25f, std::span<const float>(p),
                                   std::span<const float>(ap), std::span<float>(xx),
                                   std::span<float>(r));
  axpy(0.25f, std::span<const float>(p), std::span<float>(xx_ref));
  axpy(-0.25f, std::span<const float>(ap), std::span<float>(r_ref));
  EXPECT_EQ(xx, xx_ref);
  EXPECT_EQ(r, r_ref);
  const float rr_ref = dot(std::span<const float>(r_ref), std::span<const float>(r_ref));
  EXPECT_LE(std::abs(static_cast<double>(rr) - static_cast<double>(rr_ref)),
            reassoc_bound(r_ref, kEps32));
}

// ---------------------------------------------------------------------------
// fp32 preconditioner vs an identical-algorithm fp64 reference.

/// In-test fp64 replica of Fp32LaplacianPrecond::apply — the same Jacobi-
/// PCG recursion with naive scalar kernels, so the only difference from
/// the production path is arithmetic precision.
void jacobi_pcg64(const CsrAdjacency& csr, const Vec& r_in, Vec& z, int iters) {
  const auto n = static_cast<std::size_t>(csr.num_nodes());
  const LinOp op = laplacian_operator(csr);
  Vec rhs = r_in;
  project_out_ones(rhs);
  Vec x(n, 0.0), r = rhs, zv(n), p(n), ap(n);
  Vec inv_diag(n);
  for (std::size_t i = 0; i < n; ++i) {
    inv_diag[i] = csr.degree[i] > 0.0 ? 1.0 / csr.degree[i] : 1.0;
  }
  double rr = dot(r, r);
  const double stop = rr * 1e-12;
  double rz = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    zv[i] = inv_diag[i] * r[i];
    rz += r[i] * zv[i];
  }
  p = zv;
  for (int it = 0; it < iters; ++it) {
    if (!(rr > stop)) break;
    op(p, ap);
    project_out_ones(ap);
    const double pap = dot(p, ap);
    if (!(pap > 0.0)) break;
    const double alpha = rz / pap;
    axpy(alpha, p, x);
    axpy(-alpha, ap, r);
    rr = dot(r, r);
    double rz_next = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      zv[i] = inv_diag[i] * r[i];
      rz_next += r[i] * zv[i];
    }
    const double beta = rz_next / rz;
    rz = rz_next;
    xpby(zv, beta, p);
  }
  copy(x, z);
  project_out_ones(z);
}

/// kappa(L) = lambda_max / lambda_2, both estimated iteratively: power
/// iteration for lambda_max, inverse iteration (pcg solves) for lambda_2.
/// Nullspace (the ones vector) is projected out throughout.
double estimate_kappa(const CsrAdjacency& csr, Rng& rng) {
  const auto n = static_cast<std::size_t>(csr.num_nodes());
  const LinOp op = laplacian_operator(csr);
  Vec v = random_vec(n, rng);
  project_out_ones(v);
  Vec w(n);
  double lambda_max = 0.0;
  for (int it = 0; it < 60; ++it) {
    op(v, w);
    project_out_ones(w);
    lambda_max = dot(v, w) / dot(v, v);
    const double nrm = std::sqrt(dot(w, w));
    for (std::size_t i = 0; i < n; ++i) v[i] = w[i] / nrm;
  }

  Vec u = random_vec(n, rng);
  project_out_ones(u);
  CgOptions copts;
  copts.rel_tol = 1e-10;
  copts.project_nullspace = true;
  double lambda2 = lambda_max;
  for (int it = 0; it < 12; ++it) {
    Vec y(n, 0.0);
    pcg(op, u, y, nullptr, copts);
    project_out_ones(y);
    op(y, w);
    project_out_ones(w);
    lambda2 = dot(y, w) / dot(y, y);
    const double nrm = std::sqrt(dot(y, y));
    for (std::size_t i = 0; i < n; ++i) u[i] = y[i] / nrm;
  }
  return lambda_max / lambda2;
}

TEST(KernelPrecond32, TracksFp64ReferenceWithinConditionBound) {
  Rng rng(41);
  const Graph g = make_triangulated_grid(12, 12, rng);
  const CsrAdjacency csr = build_csr(g);
  const double kappa = estimate_kappa(csr, rng);
  ASSERT_GT(kappa, 1.0);

  Fp32LaplacianPrecond precond;
  precond.rebuild(csr);
  ASSERT_FALSE(precond.empty());
  ASSERT_EQ(precond.num_nodes(), g.num_nodes());

  const auto n = static_cast<std::size_t>(g.num_nodes());
  for (const int iters : {4, 12}) {
    for (const std::uint64_t seed : {1u, 2u, 3u}) {
      Rng vr(seed);
      Vec r = random_vec(n, vr);
      Vec z32(n), z64(n);
      precond.apply(r, z32, iters);
      jacobi_pcg64(csr, r, z64, iters);
      // Forward-error model: an fp32 run of the same recursion deviates by
      // O(kappa * eps_f32) relative per the standard CG perturbation
      // bound; 64x covers the iteration-count constant.
      const double tol = 64.0 * kappa * kEps32 * std::sqrt(dot(z64, z64));
      const double diff = rel_diff(z32, z64) * std::sqrt(dot(z64, z64));
      EXPECT_LE(diff, tol) << "iters=" << iters << " seed=" << seed
                           << " kappa=" << kappa;
    }
  }
}

TEST(KernelPrecond32, ResultIsOrthogonalToOnes) {
  Rng rng(43);
  const Graph g = make_triangulated_grid(8, 8, rng);
  const CsrAdjacency csr = build_csr(g);
  Fp32LaplacianPrecond precond;
  precond.rebuild(csr);
  const auto n = static_cast<std::size_t>(g.num_nodes());
  Vec r = random_vec(n, rng);
  Vec z(n);
  precond.apply(r, z, 10);
  double mean = 0.0;
  for (const double v : z) mean += v;
  mean /= static_cast<double>(n);
  EXPECT_LE(std::abs(mean), 1e-9 * std::sqrt(dot(z, z) / static_cast<double>(n)) + 1e-12);
}

}  // namespace
}  // namespace ingrass
