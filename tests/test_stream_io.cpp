#include <gtest/gtest.h>

#include <sstream>

#include "core/edge_stream.hpp"
#include "graph/generators.hpp"
#include "graph/stream_io.hpp"

namespace ingrass {
namespace {

TEST(StreamIo, RoundTripPreservesBatchesAndEdges) {
  Rng rng(3);
  const Graph g = make_triangulated_grid(8, 8, rng);
  EdgeStreamOptions opts;
  opts.iterations = 4;
  opts.total_per_node = 0.2;
  const auto batches = make_edge_stream(g, opts);

  std::stringstream buf;
  write_edge_stream(buf, batches);
  const auto back = read_edge_stream(buf, g.num_nodes());

  ASSERT_EQ(back.size(), batches.size());
  for (std::size_t b = 0; b < batches.size(); ++b) {
    ASSERT_EQ(back[b].size(), batches[b].size()) << "batch " << b;
    for (std::size_t i = 0; i < batches[b].size(); ++i) {
      EXPECT_EQ(back[b][i].u, batches[b][i].u);
      EXPECT_EQ(back[b][i].v, batches[b][i].v);
      EXPECT_DOUBLE_EQ(back[b][i].w, batches[b][i].w);
    }
  }
}

TEST(StreamIo, CommentsAndBlankLinesIgnored) {
  std::stringstream in(
      "# header\n"
      "\n"
      "0 1 2 1.5   # trailing comment\n"
      "  # indented comment\n"
      "1 3 4 2.0\n");
  const auto batches = read_edge_stream(in);
  ASSERT_EQ(batches.size(), 2u);
  EXPECT_EQ(batches[0].size(), 1u);
  EXPECT_EQ(batches[1].size(), 1u);
  EXPECT_DOUBLE_EQ(batches[0][0].w, 1.5);
}

TEST(StreamIo, SkippedBatchIndexIsEmptyBatch) {
  std::stringstream in("0 0 1 1.0\n2 2 3 1.0\n");
  const auto batches = read_edge_stream(in);
  ASSERT_EQ(batches.size(), 3u);
  EXPECT_TRUE(batches[1].empty());
}

TEST(StreamIo, EndpointsNormalizedToULessThanV) {
  std::stringstream in("0 7 2 1.0\n");
  const auto batches = read_edge_stream(in);
  EXPECT_EQ(batches[0][0].u, 2);
  EXPECT_EQ(batches[0][0].v, 7);
}

TEST(StreamIo, RejectsMalformedLines) {
  auto expect_reject = [](const std::string& text) {
    std::stringstream in(text);
    EXPECT_THROW(read_edge_stream(in), std::runtime_error) << text;
  };
  expect_reject("0 1 2\n");             // missing weight
  expect_reject("0 1 2 1.0 extra\n");   // trailing token
  expect_reject("-1 1 2 1.0\n");        // negative batch
  expect_reject("0 -1 2 1.0\n");        // negative node
  expect_reject("0 3 3 1.0\n");         // self-loop
  expect_reject("0 1 2 0.0\n");         // non-positive weight
  expect_reject("0 1 2 -3.0\n");        // negative weight
  expect_reject("1 1 2 1.0\n0 3 4 1.0\n");  // decreasing batch index
}

TEST(StreamIo, RejectsNodeIdBeyondGraph) {
  std::stringstream in("0 1 99 1.0\n");
  EXPECT_THROW(read_edge_stream(in, 10), std::runtime_error);
}

TEST(StreamIo, MissingFileThrows) {
  EXPECT_THROW(load_edge_stream("/nonexistent/stream.txt"), std::runtime_error);
}

TEST(StreamIo, SaveAndLoadFile) {
  Rng rng(5);
  const Graph g = make_grid2d(6, 6, rng);
  EdgeStreamOptions opts;
  opts.iterations = 2;
  opts.total_per_node = 0.1;
  const auto batches = make_edge_stream(g, opts);
  const std::string path = testing::TempDir() + "/ingrass_stream_io_test.txt";
  save_edge_stream(path, batches);
  const auto back = load_edge_stream(path, g.num_nodes());
  ASSERT_EQ(back.size(), batches.size());
  EXPECT_EQ(back[0].size(), batches[0].size());
}

}  // namespace
}  // namespace ingrass
