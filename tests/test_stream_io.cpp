#include <gtest/gtest.h>

#include <sstream>

#include "core/edge_stream.hpp"
#include "graph/generators.hpp"
#include "graph/stream_io.hpp"

namespace ingrass {
namespace {

TEST(StreamIo, RoundTripPreservesBatchesAndEdges) {
  Rng rng(3);
  const Graph g = make_triangulated_grid(8, 8, rng);
  EdgeStreamOptions opts;
  opts.iterations = 4;
  opts.total_per_node = 0.2;
  const auto batches = make_edge_stream(g, opts);

  std::stringstream buf;
  write_edge_stream(buf, batches);
  const auto back = read_edge_stream(buf, g.num_nodes());

  ASSERT_EQ(back.size(), batches.size());
  for (std::size_t b = 0; b < batches.size(); ++b) {
    ASSERT_EQ(back[b].size(), batches[b].size()) << "batch " << b;
    for (std::size_t i = 0; i < batches[b].size(); ++i) {
      EXPECT_EQ(back[b][i].u, batches[b][i].u);
      EXPECT_EQ(back[b][i].v, batches[b][i].v);
      EXPECT_DOUBLE_EQ(back[b][i].w, batches[b][i].w);
    }
  }
}

TEST(StreamIo, CommentsAndBlankLinesIgnored) {
  std::stringstream in(
      "# header\n"
      "\n"
      "0 1 2 1.5   # trailing comment\n"
      "  # indented comment\n"
      "1 3 4 2.0\n");
  const auto batches = read_edge_stream(in);
  ASSERT_EQ(batches.size(), 2u);
  EXPECT_EQ(batches[0].size(), 1u);
  EXPECT_EQ(batches[1].size(), 1u);
  EXPECT_DOUBLE_EQ(batches[0][0].w, 1.5);
}

TEST(StreamIo, SkippedBatchIndexIsEmptyBatch) {
  std::stringstream in("0 0 1 1.0\n2 2 3 1.0\n");
  const auto batches = read_edge_stream(in);
  ASSERT_EQ(batches.size(), 3u);
  EXPECT_TRUE(batches[1].empty());
}

TEST(StreamIo, EndpointsNormalizedToULessThanV) {
  std::stringstream in("0 7 2 1.0\n");
  const auto batches = read_edge_stream(in);
  EXPECT_EQ(batches[0][0].u, 2);
  EXPECT_EQ(batches[0][0].v, 7);
}

TEST(StreamIo, RejectsMalformedLines) {
  auto expect_reject = [](const std::string& text) {
    std::stringstream in(text);
    EXPECT_THROW(read_edge_stream(in), std::runtime_error) << text;
  };
  expect_reject("0 1 2\n");             // missing weight
  expect_reject("0 1 2 1.0 extra\n");   // trailing token
  expect_reject("-1 1 2 1.0\n");        // negative batch
  expect_reject("0 -1 2 1.0\n");        // negative node
  expect_reject("0 3 3 1.0\n");         // self-loop
  expect_reject("0 1 2 0.0\n");         // non-positive weight
  expect_reject("0 1 2 -3.0\n");        // negative weight
  expect_reject("1 1 2 1.0\n0 3 4 1.0\n");  // decreasing batch index
  expect_reject("O 1 2 1.0\n");         // non-numeric batch token (letter O)
  expect_reject("batch 3 4 1.0\n");     // word where the index belongs
  expect_reject("1x 3 4 1.0\n");        // trailing junk inside the index
}

TEST(StreamIo, RejectsNodeIdBeyondGraph) {
  std::stringstream in("0 1 99 1.0\n");
  EXPECT_THROW(read_edge_stream(in, 10), std::runtime_error);
}

TEST(StreamIo, MissingFileThrows) {
  EXPECT_THROW(load_edge_stream("/nonexistent/stream.txt"), std::runtime_error);
}

TEST(StreamIo, RemovalRecordsParseAndNormalize) {
  std::stringstream in(
      "0 1 2 1.5\n"
      "0 - 7 3\n"
      "1 - 0 4\n"
      "1 5 6 2.0\n");
  const auto batches = read_update_stream(in);
  ASSERT_EQ(batches.size(), 2u);
  ASSERT_EQ(batches[0].inserts.size(), 1u);
  ASSERT_EQ(batches[0].removals.size(), 1u);
  EXPECT_EQ(batches[0].removals[0], (std::pair<NodeId, NodeId>{3, 7}));  // normalized
  ASSERT_EQ(batches[1].removals.size(), 1u);
  EXPECT_EQ(batches[1].removals[0], (std::pair<NodeId, NodeId>{0, 4}));
  EXPECT_EQ(batches[1].inserts[0].v, 6);
}

TEST(StreamIo, UpdateStreamRoundTrip) {
  std::vector<UpdateBatch> batches(3);
  batches[0].inserts.push_back(Edge{1, 2, 1.25});
  batches[1].removals.emplace_back(0, 3);
  batches[2].inserts.push_back(Edge{4, 5, 0.75});
  batches[2].removals.emplace_back(1, 2);

  std::stringstream buf;
  write_update_stream(buf, batches);
  const auto back = read_update_stream(buf);
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back[0].inserts.size(), 1u);
  EXPECT_EQ(back[1].removals.size(), 1u);
  EXPECT_EQ(back[2].inserts.size(), 1u);
  EXPECT_EQ(back[2].removals.size(), 1u);
  EXPECT_DOUBLE_EQ(back[0].inserts[0].w, 1.25);
  EXPECT_EQ(back[2].removals[0], (std::pair<NodeId, NodeId>{1, 2}));
}

TEST(StreamIo, RejectsMalformedRemovalRecords) {
  auto expect_reject = [](const std::string& text, const std::string& line_tag) {
    std::stringstream in(text);
    try {
      static_cast<void>(read_update_stream(in, 10));
      FAIL() << "expected rejection of: " << text;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(line_tag), std::string::npos)
          << "error should name the offending line: " << e.what();
    }
  };
  expect_reject("0 - 1\n", "line 1");             // missing endpoint
  expect_reject("0 - 1 2 1.0\n", "line 1");       // removal with a weight
  expect_reject("0 - 3 3\n", "line 1");           // self-loop
  expect_reject("0 - -1 2\n", "line 1");          // negative node
  expect_reject("0 1 2 1.0\n0 - 1 99\n", "line 2");  // id beyond graph
}

TEST(StreamIo, InsertOnlyReaderRejectsRemovalRecords) {
  std::stringstream in("0 1 2 1.0\n1 - 1 2\n");
  try {
    static_cast<void>(read_edge_stream(in));
    FAIL() << "expected rejection";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 2"), std::string::npos) << what;
    EXPECT_NE(what.find("removal"), std::string::npos) << what;
  }
}

TEST(StreamIo, SaveAndLoadUpdateStreamFile) {
  std::vector<UpdateBatch> batches(2);
  batches[0].inserts.push_back(Edge{0, 1, 2.0});
  batches[1].removals.emplace_back(0, 1);
  const std::string path = testing::TempDir() + "/ingrass_update_stream_test.txt";
  save_update_stream(path, batches);
  const auto back = load_update_stream(path, 8);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].inserts.size(), 1u);
  EXPECT_EQ(back[1].removals.size(), 1u);
}

TEST(StreamIo, SaveAndLoadFile) {
  Rng rng(5);
  const Graph g = make_grid2d(6, 6, rng);
  EdgeStreamOptions opts;
  opts.iterations = 2;
  opts.total_per_node = 0.1;
  const auto batches = make_edge_stream(g, opts);
  const std::string path = testing::TempDir() + "/ingrass_stream_io_test.txt";
  save_edge_stream(path, batches);
  const auto back = load_edge_stream(path, g.num_nodes());
  ASSERT_EQ(back.size(), batches.size());
  EXPECT_EQ(back[0].size(), batches[0].size());
}

}  // namespace
}  // namespace ingrass
