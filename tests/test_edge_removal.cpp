#include <gtest/gtest.h>

#include "core/ingrass.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "sparsify/grass.hpp"
#include "spectral/condition_number.hpp"

namespace ingrass {
namespace {

TEST(GraphRemoveEdge, RemovesAndCompacts) {
  Graph g(4);
  const EdgeId e0 = g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  const EdgeId e2 = g.add_edge(2, 3, 3.0);
  const EdgeId moved = g.remove_edge(e0);
  EXPECT_EQ(moved, e2);  // last edge relocated into slot 0
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_TRUE(g.has_edge(2, 3));
  // The moved edge is reachable under its new id via adjacency.
  const EdgeId found = g.find_edge(2, 3);
  EXPECT_EQ(found, e0);
  EXPECT_DOUBLE_EQ(g.edge(found).w, 3.0);
}

TEST(GraphRemoveEdge, RemoveLastNeedsNoMove) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  const EdgeId last = g.add_edge(1, 2, 2.0);
  EXPECT_EQ(g.remove_edge(last), kInvalidEdge);
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_FALSE(g.has_edge(1, 2));
}

TEST(GraphRemoveEdge, DegreesStayConsistent) {
  Rng rng(1);
  Graph g = make_triangulated_grid(6, 6, rng);
  const EdgeId before = g.num_edges();
  // Remove a third of the edges (always id 0, exercising the swap).
  for (EdgeId i = 0; i < before / 3; ++i) g.remove_edge(0);
  EXPECT_EQ(g.num_edges(), before - before / 3);
  // Adjacency and edge array agree.
  EdgeId arc_count = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const Arc& a : g.neighbors(v)) {
      const Edge& e = g.edge(a.edge);
      EXPECT_TRUE(e.u == v || e.v == v);
      ++arc_count;
    }
  }
  EXPECT_EQ(arc_count, 2 * g.num_edges());
}

TEST(GraphRemoveEdge, BadIdThrows) {
  Graph g(2);
  g.add_edge(0, 1, 1.0);
  EXPECT_THROW(g.remove_edge(5), std::out_of_range);
  EXPECT_THROW(g.remove_edge(-1), std::out_of_range);
}

TEST(IngrassRemoveEdges, RemovesAndResetups) {
  Rng rng(2);
  const Graph g = make_triangulated_grid(10, 10, rng);
  GrassOptions gopts;
  gopts.target_offtree_density = 0.20;
  const Graph h0 = grass_sparsify(g, gopts).sparsifier;
  Ingrass ing{Graph(h0)};

  // Remove a few off-tree edges that exist in H (pick from its edge list,
  // skipping ones whose removal would disconnect: use high-id extras).
  std::vector<std::pair<NodeId, NodeId>> doomed;
  for (EdgeId e = h0.num_edges() - 5; e < h0.num_edges(); ++e) {
    doomed.emplace_back(h0.edge(e).u, h0.edge(e).v);
  }
  doomed.emplace_back(0, 99);  // not an edge: ignored
  const EdgeId removed = ing.remove_edges(doomed);
  EXPECT_EQ(removed, 5);
  EXPECT_EQ(ing.sparsifier().num_edges(), h0.num_edges() - 5);
  for (EdgeId i = 0; i < 5; ++i) {
    EXPECT_FALSE(ing.sparsifier().has_edge(doomed[static_cast<std::size_t>(i)].first,
                                           doomed[static_cast<std::size_t>(i)].second));
  }
  // The hierarchy was rebuilt and stays usable.
  EXPECT_GE(ing.num_levels(), 1);
  const auto stats = ing.insert_edges({});
  EXPECT_EQ(stats.total(), 0);
}

TEST(IngrassRemoveEdges, NoMatchesIsNoop) {
  Rng rng(3);
  const Graph g = make_grid2d(6, 6, rng);
  GrassOptions gopts;
  const Graph h0 = grass_sparsify(g, gopts).sparsifier;
  Ingrass ing{Graph(h0)};
  const double setup = ing.setup_seconds();
  std::vector<std::pair<NodeId, NodeId>> none{{0, 35}};
  if (h0.has_edge(0, 35)) GTEST_SKIP();
  EXPECT_EQ(ing.remove_edges(none), 0);
  EXPECT_DOUBLE_EQ(ing.setup_seconds(), setup);  // no resetup happened
}

TEST(IngrassRemoveEdges, InsertAfterRemoveRoundTrip) {
  Rng rng(4);
  Graph g = make_triangulated_grid(10, 10, rng);
  GrassOptions gopts;
  gopts.target_offtree_density = 0.20;
  const Graph h0 = grass_sparsify(g, gopts).sparsifier;
  const double kappa0 = condition_number(g, h0);
  Ingrass::Options iopts;
  iopts.target_condition = kappa0;
  Ingrass ing{Graph(h0), iopts};

  // Delete an off-tree sparsifier edge, then re-insert it as a new edge.
  const Edge victim = h0.edge(h0.num_edges() - 1);
  std::vector<std::pair<NodeId, NodeId>> doomed{{victim.u, victim.v}};
  ASSERT_EQ(ing.remove_edges(doomed), 1);
  std::vector<Edge> batch{victim};
  const auto stats = ing.insert_edges(batch);
  EXPECT_EQ(stats.total(), 1);
  EXPECT_TRUE(is_connected(ing.sparsifier()));
}

}  // namespace
}  // namespace ingrass
