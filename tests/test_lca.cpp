#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "tree/lca.hpp"
#include "tree/spanning_tree.hpp"

namespace ingrass {
namespace {

/// Path 0-1-2-3-4 rooted at 0.
struct PathFixture {
  Graph g{5};
  std::vector<EdgeId> edges;
  PathFixture() {
    for (NodeId v = 0; v + 1 < 5; ++v) edges.push_back(g.add_edge(v, v + 1, 1.0));
  }
};

TEST(RootedTree, PathStructure) {
  PathFixture f;
  const RootedTree t(f.g, f.edges);
  EXPECT_EQ(t.parent(0), 0);
  EXPECT_EQ(t.parent(3), 2);
  EXPECT_EQ(t.depth(4), 4);
  EXPECT_EQ(t.parent_edge(0), kInvalidEdge);
  EXPECT_EQ(t.parent_edge(1), f.edges[0]);
  EXPECT_TRUE(t.same_tree(0, 4));
  EXPECT_EQ(t.root_of(4), 0);
}

TEST(Lca, OnPath) {
  PathFixture f;
  const RootedTree t(f.g, f.edges);
  const LcaIndex lca(t);
  EXPECT_EQ(lca.lca(2, 4), 2);  // ancestor-descendant
  EXPECT_EQ(lca.lca(4, 2), 2);
  EXPECT_EQ(lca.lca(3, 3), 3);
  EXPECT_EQ(lca.lca(0, 4), 0);
}

TEST(Lca, OnStar) {
  Graph g(5);
  std::vector<EdgeId> edges;
  for (NodeId v = 1; v < 5; ++v) edges.push_back(g.add_edge(0, v, 1.0));
  const RootedTree t(g, edges);
  const LcaIndex lca(t);
  EXPECT_EQ(lca.lca(1, 2), 0);
  EXPECT_EQ(lca.lca(3, 4), 0);
  EXPECT_EQ(lca.lca(0, 3), 0);
}

TEST(Lca, BinaryTreeKnownAnswers) {
  //       0
  //     1   2
  //    3 4 5 6
  Graph g(7);
  std::vector<EdgeId> edges;
  edges.push_back(g.add_edge(0, 1, 1.0));
  edges.push_back(g.add_edge(0, 2, 1.0));
  edges.push_back(g.add_edge(1, 3, 1.0));
  edges.push_back(g.add_edge(1, 4, 1.0));
  edges.push_back(g.add_edge(2, 5, 1.0));
  edges.push_back(g.add_edge(2, 6, 1.0));
  const RootedTree t(g, edges);
  const LcaIndex lca(t);
  EXPECT_EQ(lca.lca(3, 4), 1);
  EXPECT_EQ(lca.lca(3, 6), 0);
  EXPECT_EQ(lca.lca(5, 6), 2);
  EXPECT_EQ(lca.lca(4, 2), 0);
}

TEST(Lca, AncestorWalk) {
  PathFixture f;
  const RootedTree t(f.g, f.edges);
  const LcaIndex lca(t);
  EXPECT_EQ(lca.ancestor(4, 0), 4);
  EXPECT_EQ(lca.ancestor(4, 2), 2);
  EXPECT_EQ(lca.ancestor(4, 4), 0);
  EXPECT_EQ(lca.ancestor(4, 100), 0);  // clamps at root
}

TEST(Lca, DifferentComponentsReturnInvalid) {
  Graph g(4);
  std::vector<EdgeId> edges;
  edges.push_back(g.add_edge(0, 1, 1.0));
  edges.push_back(g.add_edge(2, 3, 1.0));
  const RootedTree t(g, edges);
  const LcaIndex lca(t);
  EXPECT_EQ(lca.lca(0, 3), kInvalidNode);
  EXPECT_EQ(lca.lca(2, 3), 2);
}

TEST(Lca, AgreesWithNaiveOnRandomTree) {
  Rng rng(9);
  const Graph g = make_triangulated_grid(7, 7, rng);
  const auto forest = max_weight_spanning_forest(g);
  const RootedTree t(g, forest);
  const LcaIndex lca(t);
  auto naive = [&](NodeId u, NodeId v) {
    while (u != v) {
      if (t.depth(u) >= t.depth(v)) {
        u = t.parent(u);
      } else {
        v = t.parent(v);
      }
    }
    return u;
  };
  Rng prng(10);
  for (int i = 0; i < 200; ++i) {
    const auto u = static_cast<NodeId>(prng.uniform_index(49));
    const auto v = static_cast<NodeId>(prng.uniform_index(49));
    EXPECT_EQ(lca.lca(u, v), naive(u, v)) << u << "," << v;
  }
}

}  // namespace
}  // namespace ingrass
