#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "spectral/spectral_distortion.hpp"

namespace ingrass {
namespace {

TEST(SpectralDistortion, RanksDescending) {
  Rng rng(1);
  const Graph g = make_grid2d(10, 10, rng);
  const ResistanceEmbedding emb = ResistanceEmbedding::build(g);
  std::vector<Edge> candidates;
  for (NodeId i = 0; i < 20; ++i) {
    Edge e;
    e.u = i;
    e.v = static_cast<NodeId>(99 - i);
    e.w = 1.0 + i * 0.1;
    candidates.push_back(e);
  }
  const auto ranked = rank_by_distortion(emb, candidates);
  ASSERT_EQ(ranked.size(), candidates.size());
  for (std::size_t i = 0; i + 1 < ranked.size(); ++i) {
    EXPECT_GE(ranked[i].distortion, ranked[i + 1].distortion);
  }
}

TEST(SpectralDistortion, SourceIndexTracksInput) {
  Rng rng(2);
  const Graph g = make_grid2d(6, 6, rng);
  const ResistanceEmbedding emb = ResistanceEmbedding::build(g);
  const std::vector<Edge> candidates{{0, 35, 1.0}, {14, 15, 1.0}};
  const auto ranked = rank_by_distortion(emb, candidates);
  // Corner-to-corner should out-rank an adjacent pair; its source index 0
  // must be preserved.
  EXPECT_EQ(ranked.front().source_index, 0u);
  EXPECT_EQ(ranked.back().source_index, 1u);
}

TEST(SpectralDistortion, WeightScalesScore) {
  Rng rng(3);
  const Graph g = make_grid2d(6, 6, rng);
  const ResistanceEmbedding emb = ResistanceEmbedding::build(g);
  const std::vector<Edge> candidates{{0, 35, 1.0}, {0, 35, 2.0}};
  const auto ranked = rank_by_distortion(emb, candidates);
  EXPECT_NEAR(ranked[0].distortion, 2.0 * ranked[1].distortion, 1e-12);
}

TEST(SpectralDistortion, TotalMatchesSum) {
  Rng rng(4);
  const Graph g = make_grid2d(5, 5, rng);
  const ResistanceEmbedding emb = ResistanceEmbedding::build(g);
  const std::vector<Edge> candidates{{0, 24, 1.0}, {3, 20, 2.0}, {1, 2, 0.5}};
  const auto ranked = rank_by_distortion(emb, candidates);
  double sum = 0.0;
  for (const auto& r : ranked) sum += r.distortion;
  EXPECT_NEAR(total_distortion(emb, candidates), sum, 1e-12);
}

TEST(SpectralDistortion, EmptyBatch) {
  Rng rng(5);
  const Graph g = make_grid2d(4, 4, rng);
  const ResistanceEmbedding emb = ResistanceEmbedding::build(g);
  EXPECT_TRUE(rank_by_distortion(emb, {}).empty());
  EXPECT_DOUBLE_EQ(total_distortion(emb, {}), 0.0);
}

}  // namespace
}  // namespace ingrass
