#include <gtest/gtest.h>

#include "core/cluster_structure.hpp"
#include "graph/generators.hpp"

namespace ingrass {
namespace {

struct Fixture {
  Graph h;
  MultilevelEmbedding emb;
  Fixture() {
    Rng rng(1);
    h = make_triangulated_grid(8, 8, rng);
    emb = MultilevelEmbedding::build(h);
  }
};

TEST(ClusterStructure, FilteringLevelRespectsSizeCap) {
  Fixture f;
  for (const double target : {4.0, 16.0, 64.0, 1024.0}) {
    const int level = ClusterStructure::choose_filtering_level(f.emb, target);
    ASSERT_GE(level, 0);
    ASSERT_LT(level, f.emb.num_levels());
    EXPECT_LE(static_cast<double>(f.emb.max_cluster_size(level)),
              std::max(1.0, target / 2.0))
        << "target " << target;
  }
}

TEST(ClusterStructure, LargerTargetGivesDeeperLevel) {
  Fixture f;
  const int shallow = ClusterStructure::choose_filtering_level(f.emb, 4.0);
  const int deep = ClusterStructure::choose_filtering_level(f.emb, 1e9);
  EXPECT_GE(deep, shallow);
  EXPECT_EQ(deep, f.emb.num_levels() - 1);  // everything fits
}

TEST(ClusterStructure, EveryEdgeIndexedOnce) {
  Fixture f;
  const int level = ClusterStructure::choose_filtering_level(f.emb, 32.0);
  const ClusterStructure cs(f.emb, f.h, level);
  std::size_t intra_total = 0;
  for (NodeId c = 0; c < f.emb.num_clusters(level); ++c) {
    intra_total += cs.intra_cluster_edges(c).size();
  }
  // bridge_ holds at most one edge per cluster pair, so bridges <= edges.
  EXPECT_LE(cs.num_bridges() + intra_total, static_cast<std::size_t>(f.h.num_edges()));
  EXPECT_GT(intra_total, 0u);
  EXPECT_GT(cs.num_bridges(), 0u);
}

TEST(ClusterStructure, BridgeLookupMatchesClusters) {
  Fixture f;
  const int level = ClusterStructure::choose_filtering_level(f.emb, 32.0);
  const ClusterStructure cs(f.emb, f.h, level);
  for (EdgeId e = 0; e < f.h.num_edges(); e += 5) {
    const Edge& edge = f.h.edge(e);
    if (cs.same_cluster(edge.u, edge.v)) {
      EXPECT_EQ(cs.bridge_edge(edge.u, edge.v), kInvalidEdge);
    } else {
      const EdgeId b = cs.bridge_edge(edge.u, edge.v);
      ASSERT_NE(b, kInvalidEdge);
      // The bridge connects the same cluster pair as the query edge.
      const Edge& be = f.h.edge(b);
      const auto cu = cs.cluster_of(edge.u);
      const auto cv = cs.cluster_of(edge.v);
      const auto cbu = cs.cluster_of(be.u);
      const auto cbv = cs.cluster_of(be.v);
      EXPECT_TRUE((cu == cbu && cv == cbv) || (cu == cbv && cv == cbu));
    }
  }
}

TEST(ClusterStructure, RegisterNewEdgeCreatesBridge) {
  Fixture f;
  const int level = ClusterStructure::choose_filtering_level(f.emb, 16.0);
  ClusterStructure cs(f.emb, f.h, level);
  // Find two nodes in different clusters with no bridge yet.
  NodeId u = kInvalidNode, v = kInvalidNode;
  for (NodeId a = 0; a < f.h.num_nodes() && u == kInvalidNode; ++a) {
    for (NodeId b = a + 1; b < f.h.num_nodes(); ++b) {
      if (!cs.same_cluster(a, b) && cs.bridge_edge(a, b) == kInvalidEdge) {
        u = a;
        v = b;
        break;
      }
    }
  }
  ASSERT_NE(u, kInvalidNode);
  const EdgeId e = f.h.add_edge(u, v, 1.0);
  cs.register_edge(e);
  EXPECT_EQ(cs.bridge_edge(u, v), e);
}

TEST(ClusterStructure, IntraEdgeEndpointsShareCluster) {
  Fixture f;
  const int level = ClusterStructure::choose_filtering_level(f.emb, 64.0);
  const ClusterStructure cs(f.emb, f.h, level);
  for (NodeId c = 0; c < f.emb.num_clusters(level); ++c) {
    for (const EdgeId e : cs.intra_cluster_edges(c)) {
      const Edge& edge = f.h.edge(e);
      EXPECT_EQ(cs.cluster_of(edge.u), c);
      EXPECT_EQ(cs.cluster_of(edge.v), c);
    }
  }
}

TEST(ClusterStructure, BadLevelThrows) {
  Fixture f;
  EXPECT_THROW(ClusterStructure(f.emb, f.h, -1), std::out_of_range);
  EXPECT_THROW(ClusterStructure(f.emb, f.h, f.emb.num_levels()), std::out_of_range);
}

}  // namespace
}  // namespace ingrass
