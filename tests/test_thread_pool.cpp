#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/ingrass.hpp"
#include "graph/generators.hpp"
#include "sparsify/grass.hpp"
#include "util/thread_pool.hpp"

namespace ingrass {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(), 7, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1);
  std::vector<int> order;
  pool.parallel_for(5, 1, [&](std::size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));  // inline = sequential
}

TEST(ThreadPool, ZeroIterationsIsNoop) {
  ThreadPool pool(3);
  bool called = false;
  pool.parallel_for(0, 1, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ClampsNonPositiveThreadCounts) {
  ThreadPool pool(-2);
  EXPECT_EQ(pool.size(), 1);
  std::atomic<int> sum{0};
  pool.parallel_for(10, 3, [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100, 8,
                                 [&](std::size_t i) {
                                   if (i == 37) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ReusableAcrossManyJobs) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<long> sum{0};
    pool.parallel_for(256, 16, [&](std::size_t i) { sum += static_cast<long>(i); });
    EXPECT_EQ(sum.load(), 256L * 255L / 2L);
  }
}

TEST(ThreadPool, LargeGrainStillCoversTail) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.parallel_for(10, 1000, [&](std::size_t) { ++count; });  // one chunk
  EXPECT_EQ(count.load(), 10);
}

Graph sparsifier_for_pool_tests() {
  Rng rng(11);
  const Graph g = make_triangulated_grid(14, 14, rng);
  GrassOptions opts;
  opts.target_offtree_density = 0.10;
  return grass_sparsify(g, opts).sparsifier;
}

TEST(ParallelUpdate, ScoresMatchSerialExactly) {
  const Graph h = sparsifier_for_pool_tests();
  Ingrass::Options serial;
  Ingrass::Options parallel = serial;
  parallel.num_threads = 4;
  parallel.parallel_batch_threshold = 1;  // force the pool path
  const Ingrass a{Graph(h), serial};
  const Ingrass b{Graph(h), parallel};

  std::vector<Edge> batch;
  Rng rng(5);
  for (int i = 0; i < 3000; ++i) {
    const auto u = static_cast<NodeId>(rng.uniform_index(h.num_nodes()));
    const auto v = static_cast<NodeId>(rng.uniform_index(h.num_nodes()));
    if (u != v) batch.push_back(Edge{std::min(u, v), std::max(u, v), 1.0});
  }
  const auto sa = a.score_batch(batch);
  const auto sb = b.score_batch(batch);
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) EXPECT_DOUBLE_EQ(sa[i], sb[i]);
}

TEST(ParallelUpdate, InsertionResultsIdenticalToSerial) {
  const Graph h = sparsifier_for_pool_tests();
  Ingrass::Options serial;
  serial.target_condition = 50.0;
  Ingrass::Options parallel = serial;
  parallel.num_threads = 4;
  parallel.parallel_batch_threshold = 1;
  Ingrass a{Graph(h), serial};
  Ingrass b{Graph(h), parallel};

  std::vector<Edge> batch;
  Rng rng(6);
  for (int i = 0; i < 2000; ++i) {
    const auto u = static_cast<NodeId>(rng.uniform_index(h.num_nodes()));
    const auto v = static_cast<NodeId>(rng.uniform_index(h.num_nodes()));
    if (u != v && !h.has_edge(u, v)) {
      batch.push_back(Edge{std::min(u, v), std::max(u, v), 0.5});
    }
  }
  const auto ra = a.insert_edges(batch);
  const auto rb = b.insert_edges(batch);
  EXPECT_EQ(ra.inserted, rb.inserted);
  EXPECT_EQ(ra.merged, rb.merged);
  EXPECT_EQ(ra.redistributed, rb.redistributed);
  EXPECT_EQ(a.sparsifier().num_edges(), b.sparsifier().num_edges());
}

TEST(SerialWorker, RunsJobsInFifoOrder) {
  SerialWorker worker;
  std::vector<int> order;
  std::mutex mu;
  for (int i = 0; i < 16; ++i) {
    worker.post([&, i] {
      const std::lock_guard<std::mutex> lock(mu);
      order.push_back(i);
    });
  }
  worker.drain();
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  EXPECT_TRUE(worker.idle());
}

TEST(SerialWorker, DrainRethrowsFirstJobException) {
  SerialWorker worker;
  std::atomic<int> ran{0};
  worker.post([] { throw std::runtime_error("boom"); });
  worker.post([&] { ran.fetch_add(1); });  // queue keeps running
  EXPECT_THROW(worker.drain(), std::runtime_error);
  EXPECT_EQ(ran.load(), 1);
  worker.drain();  // error was consumed; no rethrow
}

TEST(SerialWorker, DestructorFinishesQueuedJobs) {
  std::atomic<int> ran{0};
  {
    SerialWorker worker;
    for (int i = 0; i < 8; ++i) worker.post([&] { ran.fetch_add(1); });
  }
  EXPECT_EQ(ran.load(), 8);
}

TEST(ParallelUpdate, SmallBatchSkipsPool) {
  // Below the threshold the serial path runs — results must still be right.
  const Graph h = sparsifier_for_pool_tests();
  Ingrass::Options opts;
  opts.num_threads = 4;  // pool exists
  opts.parallel_batch_threshold = 1000000;
  Ingrass ing{Graph(h), opts};
  const std::vector<Edge> batch{Edge{0, 50, 1.0}, Edge{1, 60, 2.0}};
  const auto scores = ing.score_batch(batch);
  EXPECT_EQ(scores.size(), 2u);
  EXPECT_GT(scores[0], 0.0);
  EXPECT_GT(scores[1], 0.0);
}

TEST(FifoMutex, MutualExclusionUnderContention) {
  FifoMutex mu;
  int counter = 0;  // non-atomic on purpose: the lock must protect it
  std::vector<std::thread> threads;
  constexpr int kThreads = 4;
  constexpr int kIncrements = 2000;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        const std::lock_guard<FifoMutex> lock(mu);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, kThreads * kIncrements);
}

TEST(FifoMutex, GrantsInTicketOrder) {
  // Hold the gate, queue six threads one at a time (pending() observes
  // each one's ticket draw before the next thread spawns, so arrival
  // order is well-defined), then release and verify the critical
  // sections ran in exactly that order — the arrival-order promise
  // serve::Engine's per-tenant command gate is built on.
  FifoMutex mu;
  std::vector<int> executed;  // guarded by mu itself
  mu.lock();
  std::vector<std::thread> threads;
  constexpr int kThreads = 6;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::lock_guard<FifoMutex> lock(mu);
      executed.push_back(t);
    });
    // The holder counts 1; wait until thread t's ticket is drawn too.
    while (mu.pending() < static_cast<std::uint64_t>(t) + 2) {
      std::this_thread::yield();
    }
  }
  mu.unlock();  // the queue must drain in ticket order
  for (auto& t : threads) t.join();
  std::vector<int> expect(kThreads);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(executed, expect);
}

}  // namespace
}  // namespace ingrass
