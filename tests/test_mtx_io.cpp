#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.hpp"
#include "graph/mtx_io.hpp"
#include "graph/ops.hpp"

namespace ingrass {
namespace {

TEST(MtxIo, ReadsSymmetricReal) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "% comment\n"
      "3 3 3\n"
      "2 1 1.5\n"
      "3 2 2.5\n"
      "3 3 7.0\n");
  const Graph g = read_mtx(in);
  EXPECT_EQ(g.num_nodes(), 3);
  EXPECT_EQ(g.num_edges(), 2);  // diagonal dropped
  EXPECT_DOUBLE_EQ(g.edge(g.find_edge(0, 1)).w, 1.5);
  EXPECT_DOUBLE_EQ(g.edge(g.find_edge(1, 2)).w, 2.5);
}

TEST(MtxIo, LaplacianNegativesBecomePositiveWeights) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "2 2 2\n"
      "1 1 3.0\n"
      "2 1 -3.0\n");
  const Graph g = read_mtx(in);
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_DOUBLE_EQ(g.edge(0).w, 3.0);
}

TEST(MtxIo, PatternGetsUnitWeights) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern symmetric\n"
      "3 3 2\n"
      "2 1\n"
      "3 1\n");
  const Graph g = read_mtx(in);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_DOUBLE_EQ(g.edge(0).w, 1.0);
}

TEST(MtxIo, GeneralDuplicatesMerge) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 2\n"
      "1 2 2.0\n"
      "2 1 2.0\n");
  const Graph g = read_mtx(in);
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_DOUBLE_EQ(g.edge(0).w, 4.0);  // both triangles summed
}

TEST(MtxIo, RejectsMalformedInput) {
  {
    std::istringstream in("not a matrix market file\n");
    EXPECT_THROW(read_mtx(in), std::runtime_error);
  }
  {
    std::istringstream in("%%MatrixMarket matrix array real general\n2 2 1\n");
    EXPECT_THROW(read_mtx(in), std::runtime_error);
  }
  {
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real symmetric\n2 3 1\n2 1 1.0\n");
    EXPECT_THROW(read_mtx(in), std::runtime_error);  // not square
  }
  {
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real symmetric\n2 2 2\n2 1 1.0\n");
    EXPECT_THROW(read_mtx(in), std::runtime_error);  // truncated
  }
  {
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real symmetric\n2 2 1\n5 1 1.0\n");
    EXPECT_THROW(read_mtx(in), std::runtime_error);  // out of range
  }
}

TEST(MtxIo, RoundTripPreservesGraph) {
  Rng rng(3);
  const Graph g = make_triangulated_grid(6, 6, rng);
  std::stringstream buf;
  write_mtx(buf, g);
  const Graph back = read_mtx(buf);
  EXPECT_TRUE(graphs_equal(g, back, 1e-12));
}

TEST(MtxIo, FileRoundTrip) {
  Rng rng(4);
  const Graph g = make_grid2d(5, 5, rng);
  const std::string path = ::testing::TempDir() + "/ingrass_test.mtx";
  write_mtx_file(path, g);
  const Graph back = read_mtx_file(path);
  EXPECT_TRUE(graphs_equal(g, back, 1e-12));
  EXPECT_THROW(read_mtx_file("/nonexistent/path.mtx"), std::runtime_error);
}

}  // namespace
}  // namespace ingrass
