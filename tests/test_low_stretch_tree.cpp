#include <gtest/gtest.h>

#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "graph/ops.hpp"
#include "tree/low_stretch_tree.hpp"
#include "tree/spanning_tree.hpp"
#include "tree/union_find.hpp"

namespace ingrass {
namespace {

TEST(LowStretchTree, ProducesSpanningTree) {
  Rng rng(1);
  const Graph g = make_triangulated_grid(12, 12, rng);
  Rng trng(2);
  const auto tree = low_stretch_spanning_tree(g, trng);
  EXPECT_EQ(tree.size(), static_cast<std::size_t>(g.num_nodes() - 1));
  UnionFind uf(g.num_nodes());
  for (const EdgeId e : tree) {
    EXPECT_TRUE(uf.unite(g.edge(e).u, g.edge(e).v));
  }
  EXPECT_EQ(uf.num_sets(), 1);
}

TEST(LowStretchTree, WorksAcrossTopologies) {
  Rng rng(3);
  const Graph meshes[] = {
      make_grid2d(10, 10, rng),
      make_power_grid(8, 8, 2, rng),
      make_barabasi_albert(150, 3, rng),
  };
  for (const Graph& g : meshes) {
    Rng trng(4);
    const auto tree = low_stretch_spanning_tree(g, trng);
    const Graph t = subgraph(g, tree);
    EXPECT_TRUE(is_connected(t));
    EXPECT_EQ(t.num_edges(), g.num_nodes() - 1);
  }
}

TEST(LowStretchTree, LowerStretchThanMaxWeightTreeOnUnitGrid) {
  // On a unit-weight grid the max-weight tree degenerates to an arbitrary
  // tie-broken tree with long monotone paths; ball growing should do
  // meaningfully better on average stretch.
  Rng rng(5);
  const Graph g = make_grid2d(24, 24, rng, 1.0, 1.0);
  Rng trng(6);
  const auto ls = low_stretch_spanning_tree(g, trng);
  const auto mw = max_weight_spanning_forest(g);
  const double s_ls = average_stretch(g, ls);
  const double s_mw = average_stretch(g, mw);
  EXPECT_LT(s_ls, s_mw);
}

TEST(LowStretchTree, TrivialGraphs) {
  const Graph empty(0);
  Rng rng(7);
  EXPECT_TRUE(low_stretch_spanning_tree(empty, rng).empty());
  const Graph single(1);
  EXPECT_TRUE(low_stretch_spanning_tree(single, rng).empty());
  Graph pair(2);
  pair.add_edge(0, 1, 1.0);
  EXPECT_EQ(low_stretch_spanning_tree(pair, rng).size(), 1u);
}

TEST(LowStretchTree, DisconnectedGraphGetsForest) {
  Graph g(6);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(3, 4, 1.0);
  g.add_edge(4, 5, 1.0);
  Rng rng(8);
  const auto forest = low_stretch_spanning_tree(g, rng);
  EXPECT_EQ(forest.size(), 4u);  // N - #components
}

TEST(AverageStretch, ExactOnTreeIsOne) {
  // Every tree edge has stretch w * (1/w) = 1.
  Graph g(5);
  std::vector<EdgeId> edges;
  for (NodeId v = 0; v + 1 < 5; ++v) edges.push_back(g.add_edge(v, v + 1, 2.0));
  EXPECT_NEAR(average_stretch(g, edges), 1.0, 1e-12);
}

TEST(AverageStretch, EmptyGraphIsZero) {
  const Graph g(3);
  EXPECT_DOUBLE_EQ(average_stretch(g, {}), 0.0);
}

}  // namespace
}  // namespace ingrass
