#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "spectral/effective_resistance.hpp"

namespace ingrass {
namespace {

TEST(EffectiveResistance, SeriesLaw) {
  // Path 0-1-2 with conductances 2 and 3: R(0,2) = 1/2 + 1/3.
  Graph g(3);
  g.add_edge(0, 1, 2.0);
  g.add_edge(1, 2, 3.0);
  const EffectiveResistanceOracle oracle(g);
  EXPECT_NEAR(oracle.resistance(0, 2), 1.0 / 2.0 + 1.0 / 3.0, 1e-8);
  EXPECT_NEAR(oracle.resistance(0, 1), 0.5, 1e-8);
}

TEST(EffectiveResistance, ParallelLaw) {
  // Two parallel unit edges between 0 and 1: R = 1/2.
  Graph g(2);
  g.add_edge(0, 1, 1.0);
  g.add_edge(0, 1, 1.0);
  const EffectiveResistanceOracle oracle(g);
  EXPECT_NEAR(oracle.resistance(0, 1), 0.5, 1e-8);
}

TEST(EffectiveResistance, TriangleSymmetricCase) {
  // Unit triangle: R between any pair = 2/3.
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(0, 2, 1.0);
  const EffectiveResistanceOracle oracle(g);
  EXPECT_NEAR(oracle.resistance(0, 1), 2.0 / 3.0, 1e-8);
  EXPECT_NEAR(oracle.resistance(1, 2), 2.0 / 3.0, 1e-8);
  EXPECT_NEAR(oracle.resistance(0, 2), 2.0 / 3.0, 1e-8);
}

TEST(EffectiveResistance, SymmetryAndIdentity) {
  Rng rng(1);
  const Graph g = make_triangulated_grid(6, 6, rng);
  const EffectiveResistanceOracle oracle(g);
  EXPECT_DOUBLE_EQ(oracle.resistance(5, 5), 0.0);
  EXPECT_NEAR(oracle.resistance(0, 17), oracle.resistance(17, 0), 1e-8);
}

TEST(EffectiveResistance, DisconnectedPairsInfinite) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 1.0);
  const EffectiveResistanceOracle oracle(g);
  EXPECT_TRUE(std::isinf(oracle.resistance(0, 3)));
  EXPECT_NEAR(oracle.resistance(0, 1), 1.0, 1e-8);
}

TEST(EffectiveResistance, BoundedByShortestPathResistance) {
  // Rayleigh: adding parallel paths only lowers resistance, so R <= the
  // direct edge's 1/w.
  Rng rng(2);
  const Graph g = make_triangulated_grid(8, 8, rng);
  const EffectiveResistanceOracle oracle(g);
  for (EdgeId e = 0; e < g.num_edges(); e += 17) {
    const Edge& edge = g.edge(e);
    EXPECT_LE(oracle.resistance(edge.u, edge.v), 1.0 / edge.w + 1e-8);
  }
}

TEST(EffectiveResistance, SumOverTreeEdgesIsNMinusOne) {
  // Foster's theorem specialization: on a tree, R(u,v) of each edge is
  // exactly 1/w and the leverage sum w*R is N-1.
  Graph g(5);
  g.add_edge(0, 1, 2.0);
  g.add_edge(1, 2, 0.5);
  g.add_edge(1, 3, 4.0);
  g.add_edge(3, 4, 1.0);
  const EffectiveResistanceOracle oracle(g);
  double leverage = 0.0;
  for (const Edge& e : g.edges()) leverage += e.w * oracle.resistance(e.u, e.v);
  EXPECT_NEAR(leverage, 4.0, 1e-7);
}

TEST(EffectiveResistance, FosterTheoremOnGeneralGraph) {
  // Foster: sum over edges of w_e * R(e) = N - #components.
  Rng rng(3);
  const Graph g = make_triangulated_grid(5, 5, rng);
  const EffectiveResistanceOracle oracle(g);
  double leverage = 0.0;
  for (const Edge& e : g.edges()) leverage += e.w * oracle.resistance(e.u, e.v);
  EXPECT_NEAR(leverage, 24.0, 1e-5);
}

TEST(EffectiveResistance, BadNodeThrows) {
  Graph g(2);
  g.add_edge(0, 1, 1.0);
  const EffectiveResistanceOracle oracle(g);
  EXPECT_THROW(static_cast<void>(oracle.resistance(0, 7)), std::out_of_range);
}

}  // namespace
}  // namespace ingrass
