#include <gtest/gtest.h>

#include "graph/graph.hpp"

namespace ingrass {
namespace {

TEST(Graph, StartsEmpty) {
  const Graph g(5);
  EXPECT_EQ(g.num_nodes(), 5);
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_EQ(g.degree(0), 0);
}

TEST(Graph, AddEdgeNormalizesEndpoints) {
  Graph g(4);
  const EdgeId e = g.add_edge(3, 1, 2.0);
  EXPECT_EQ(g.edge(e).u, 1);
  EXPECT_EQ(g.edge(e).v, 3);
  EXPECT_DOUBLE_EQ(g.edge(e).w, 2.0);
}

TEST(Graph, RejectsSelfLoopsAndBadWeights) {
  Graph g(3);
  EXPECT_THROW(g.add_edge(1, 1, 1.0), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 1, 0.0), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 1, -1.0), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 5, 1.0), std::out_of_range);
  EXPECT_THROW(g.add_edge(-1, 0, 1.0), std::out_of_range);
}

TEST(Graph, AdjacencyTracksBothEndpoints) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(1), 2);
  EXPECT_EQ(g.degree(2), 1);
  EXPECT_EQ(g.neighbors(1).size(), 2u);
}

TEST(Graph, FindEdgeAndHasEdge) {
  Graph g(4);
  const EdgeId e = g.add_edge(0, 2, 1.5);
  EXPECT_EQ(g.find_edge(2, 0), e);
  EXPECT_EQ(g.find_edge(0, 2), e);
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(0, 3));
  EXPECT_EQ(g.find_edge(1, 3), kInvalidEdge);
}

TEST(Graph, AddOrMergeCoalescesParallelEdges) {
  Graph g(3);
  const EdgeId e1 = g.add_or_merge_edge(0, 1, 1.0);
  const EdgeId e2 = g.add_or_merge_edge(1, 0, 2.5);
  EXPECT_EQ(e1, e2);
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_DOUBLE_EQ(g.edge(e1).w, 3.5);
}

TEST(Graph, ParallelEdgesAllowedViaAddEdge) {
  Graph g(2);
  g.add_edge(0, 1, 1.0);
  g.add_edge(0, 1, 2.0);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_DOUBLE_EQ(g.weighted_degree(0), 3.0);
}

TEST(Graph, WeightMutation) {
  Graph g(2);
  const EdgeId e = g.add_edge(0, 1, 1.0);
  g.set_weight(e, 4.0);
  EXPECT_DOUBLE_EQ(g.edge(e).w, 4.0);
  g.add_to_weight(e, -1.0);
  EXPECT_DOUBLE_EQ(g.edge(e).w, 3.0);
  g.scale_weight(e, 2.0);
  EXPECT_DOUBLE_EQ(g.edge(e).w, 6.0);
  EXPECT_THROW(g.set_weight(e, -1.0), std::invalid_argument);
  EXPECT_THROW(g.add_to_weight(e, -100.0), std::invalid_argument);
  EXPECT_THROW(g.scale_weight(e, 0.0), std::invalid_argument);
}

TEST(Graph, WeightedDegreeAndTotalWeight) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  EXPECT_DOUBLE_EQ(g.weighted_degree(1), 3.0);
  EXPECT_DOUBLE_EQ(g.total_weight(), 3.0);
}

TEST(Graph, AddNodesExtends) {
  Graph g(2);
  const NodeId first = g.add_nodes(3);
  EXPECT_EQ(first, 2);
  EXPECT_EQ(g.num_nodes(), 5);
  g.add_edge(0, 4, 1.0);  // new node usable
  EXPECT_TRUE(g.has_edge(0, 4));
}

TEST(Graph, EdgeAccessorBounds) {
  Graph g(2);
  g.add_edge(0, 1, 1.0);
  // void-cast: Graph::edge is [[nodiscard]], and EXPECT_THROW discards.
  EXPECT_THROW(static_cast<void>(g.edge(5)), std::out_of_range);
  EXPECT_THROW(static_cast<void>(g.edge(-1)), std::out_of_range);
}

TEST(CsrAdjacency, MirrorsGraph) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(2, 3, 3.0);
  const CsrAdjacency csr = build_csr(g);
  EXPECT_EQ(csr.num_nodes(), 4);
  EXPECT_EQ(csr.targets.size(), 6u);  // 2 * num_edges
  EXPECT_DOUBLE_EQ(csr.degree[1], 3.0);
  EXPECT_DOUBLE_EQ(csr.degree[3], 3.0);
  // Node 1's neighborhood holds nodes 0 and 2.
  std::vector<NodeId> nbrs(csr.targets.begin() + csr.offsets[1],
                           csr.targets.begin() + csr.offsets[2]);
  std::sort(nbrs.begin(), nbrs.end());
  EXPECT_EQ(nbrs, (std::vector<NodeId>{0, 2}));
}

TEST(CsrAdjacency, WeightSnapshotIsStale) {
  Graph g(2);
  const EdgeId e = g.add_edge(0, 1, 1.0);
  const CsrAdjacency csr = build_csr(g);
  g.set_weight(e, 9.0);
  EXPECT_DOUBLE_EQ(csr.weights[0], 1.0);  // snapshot semantics by design
}

TEST(CsrAdjacency, RefreshWeightsInPlaceWhenPatternUnchanged) {
  Graph g(4);
  const EdgeId e0 = g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  const EdgeId e2 = g.add_edge(2, 3, 3.0);
  CsrAdjacency csr = build_csr(g);

  g.set_weight(e0, 5.0);
  g.scale_weight(e2, 2.0);
  ASSERT_TRUE(refresh_csr_weights(g, csr));
  const CsrAdjacency fresh = build_csr(g);
  EXPECT_EQ(csr.targets, fresh.targets);
  EXPECT_EQ(csr.weights, fresh.weights);
  EXPECT_EQ(csr.degree, fresh.degree);
}

TEST(CsrAdjacency, RefreshDetectsPatternChanges) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  CsrAdjacency csr = build_csr(g);

  Graph grown = g;
  grown.add_edge(2, 3, 1.0);
  CsrAdjacency snapshot = csr;
  EXPECT_FALSE(refresh_csr_weights(grown, snapshot));

  Graph shrunk = g;
  shrunk.remove_edge(0);
  snapshot = csr;
  EXPECT_FALSE(refresh_csr_weights(shrunk, snapshot));

  // Same edge count, different endpoints.
  Graph rewired(4);
  rewired.add_edge(0, 1, 1.0);
  rewired.add_edge(1, 3, 2.0);
  snapshot = csr;
  EXPECT_FALSE(refresh_csr_weights(rewired, snapshot));

  Graph more_nodes(5);
  more_nodes.add_edge(0, 1, 1.0);
  more_nodes.add_edge(1, 2, 2.0);
  snapshot = csr;
  EXPECT_FALSE(refresh_csr_weights(more_nodes, snapshot));
}

TEST(Graph, NegativeConstructionRejected) {
  EXPECT_THROW(Graph(-1), std::invalid_argument);
}

}  // namespace
}  // namespace ingrass
