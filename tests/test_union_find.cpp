#include <gtest/gtest.h>

#include "tree/union_find.hpp"

namespace ingrass {
namespace {

TEST(UnionFind, StartsFullyDisjoint) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_sets(), 5);
  EXPECT_EQ(uf.num_elements(), 5);
  EXPECT_FALSE(uf.same(0, 1));
  EXPECT_EQ(uf.set_size(3), 1);
}

TEST(UnionFind, UniteMergesAndCounts) {
  UnionFind uf(4);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.same(0, 1));
  EXPECT_EQ(uf.num_sets(), 3);
  EXPECT_EQ(uf.set_size(0), 2);
  EXPECT_FALSE(uf.unite(1, 0));  // already joined
  EXPECT_EQ(uf.num_sets(), 3);
}

TEST(UnionFind, TransitiveClosure) {
  UnionFind uf(6);
  uf.unite(0, 1);
  uf.unite(2, 3);
  uf.unite(1, 2);
  EXPECT_TRUE(uf.same(0, 3));
  EXPECT_EQ(uf.set_size(3), 4);
  EXPECT_FALSE(uf.same(0, 5));
}

TEST(UnionFind, ChainCompressionStaysCorrect) {
  const int n = 1000;
  UnionFind uf(n);
  for (int i = 0; i + 1 < n; ++i) uf.unite(i, i + 1);
  EXPECT_EQ(uf.num_sets(), 1);
  EXPECT_TRUE(uf.same(0, n - 1));
  EXPECT_EQ(uf.set_size(500), n);
}

TEST(UnionFind, BoundsChecked) {
  UnionFind uf(3);
  EXPECT_THROW(static_cast<void>(uf.find(3)), std::out_of_range);
  EXPECT_THROW(static_cast<void>(uf.find(-1)), std::out_of_range);
  EXPECT_THROW(UnionFind(-5), std::invalid_argument);
}

}  // namespace
}  // namespace ingrass
