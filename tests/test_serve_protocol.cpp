// The typed serving protocol: text/binary codec round trips for every
// Request/Response variant, malformed- and truncated-frame rejection,
// Engine error paths (command before open, unknown tenant, double open
// without close), multi-tenant isolation, periodic autosave, the
// byte-compatible text transcript through serve_stream, and the TCP
// transport (binary and text codecs auto-detected per connection).

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "graph/generators.hpp"
#include "graph/mtx_io.hpp"
#include "serve/checkpoint.hpp"
#include "serve/protocol.hpp"
#include "serve/transport.hpp"
#include "util/rng.hpp"

namespace ingrass::serve {
namespace {

// ---------------------------------------------------------------------------
// Fixtures

/// Per-process scratch file: ctest runs this binary's cases as separate
/// concurrent processes, which must not share ports or graph files.
std::string scratch_path(const std::string& name) {
  static const std::string pid = std::to_string(::getpid());
  return testing::TempDir() + "/ingrass_proto_" + pid + "_" + name;
}

/// A small connected test graph on disk, shared by the Engine tests.
const std::string& test_mtx() {
  static const std::string path = [] {
    Rng rng(7);
    const Graph g = make_triangulated_grid(5, 5, rng);
    const std::string p = scratch_path("grid.mtx");
    write_mtx_file(p, g);
    return p;
  }();
  return path;
}

SessionSpec fast_spec() {
  SessionSpec spec;
  spec.density = 0.3;
  spec.sync = true;  // deterministic tests
  return spec;
}

req::Open open_req(const std::string& name) {
  return req::Open{name, test_mtx(), fast_spec()};
}

req::OpenSharded open_sharded_req(const std::string& name, int shards) {
  return req::OpenSharded{name, test_mtx(), shards, PartitionStrategy::kGreedy,
                          fast_spec()};
}

/// The error message of a Response, or a marker when it is not an error
/// (keeps assertions on temporaries free of dangling pointers).
std::string error_message(const Response& r) {
  const auto* e = std::get_if<resp::Error>(&r);
  return e ? e->message : std::string("<not an error: index ") +
                              std::to_string(r.index()) + ">";
}

/// One of each request variant, with distinctive field values.
std::vector<Request> all_requests() {
  SessionSpec spec;
  spec.density = 0.25;
  spec.target = 80.0;
  spec.grass_target = 35.5;
  spec.staleness = 0.5;
  spec.sync = true;
  spec.no_rebuild = true;
  return {
      req::Open{"a", "graph.mtx", spec},
      req::OpenSharded{"b", "graph.mtx", 4, PartitionStrategy::kHash, spec},
      req::Restore{"", "ck.bin", SessionSpec{}},
      req::RestoreSharded{"c", "manifest.bin", SessionSpec{}},
      req::Insert{"a", 3, 7, 1.25},
      req::Remove{"", 2, 9},
      req::Apply{"tenant-x"},
      req::Solve{"a", 0, 24},
      req::Metrics{""},
      req::ShardMetrics{"b", 3},
      req::Kappa{"a"},
      req::Checkpoint{"a", "out.bin"},
      req::Autosave{"a", "auto.bin", 16},
      req::Close{"b"},
      req::Quit{},
      req::Stats{},
  };
}

/// A stats snapshot with one point of each kind and awkward name bytes
/// (spaces and '=' in a label value must survive the text grammar).
resp::StatsOut stats_out() {
  resp::StatsOut out;
  resp::StatPoint counter;
  counter.name = "ingrass_requests_total{verb=\"solve\"}";
  counter.kind = resp::StatPoint::Kind::kCounter;
  counter.value = 42.0;
  resp::StatPoint gauge;
  gauge.name = "ingrass_connections_active{transport=\"event\",note=\"a b=c\"}";
  gauge.kind = resp::StatPoint::Kind::kGauge;
  gauge.value = 3.5;
  resp::StatPoint hist;
  hist.name = "ingrass_request_seconds";
  hist.kind = resp::StatPoint::Kind::kHistogram;
  hist.count = 128;
  hist.sum = 0.75;
  hist.p50 = 0.001;
  hist.p90 = 0.004;
  hist.p99 = 0.25;
  hist.p999 = 1.5;
  out.points = {counter, gauge, hist};
  return out;
}

/// One of each response variant, with distinctive field values.
std::vector<Response> all_responses() {
  ServingMetrics plain;
  plain.nodes = 25;
  plain.g_edges = 72;
  plain.h_edges = 40;
  plain.target_condition = 100.0;
  plain.staleness = 0.125;
  plain.rebuild_in_flight = true;
  plain.counters.batches = 3;
  plain.counters.inserts_offered = 11;
  plain.counters.solves = 2;
  plain.busy_rejections = 4;

  ServingMetrics sharded = plain;
  sharded.sharded = true;
  sharded.shards = 4;
  sharded.boundary_edges = 9;
  sharded.boundary_weight = 8.5;
  sharded.global_solves = 5;
  sharded.coupling_updates = 7;

  SessionCounters counters;
  counters.batches = 2;
  counters.removals_applied = 1;
  counters.rebuilds = 1;
  counters.staleness_score = 0.75;

  return {
      resp::Error{"no session (use open or restore)"},
      resp::Opened{resp::OpenVerb::kOpenSharded, sharded},
      resp::Staged{3, 1},
      resp::Applied{4, 1, 2, 0, 1, 1, 0.25, true},
      resp::Solved{17, 3.5e-9, 0.75},
      resp::MetricsOut{plain},
      resp::ShardMetricsOut{2, 8, 14, 9, 0.0625, false, counters},
      resp::KappaOut{42.5, 100.0},
      resp::Checkpointed{"out.bin"},
      resp::AutosaveOut{"auto.bin", 8},
      resp::Closed{"tenant-x"},
      resp::Bye{},
      resp::Busy{"staged", 1024},
      Response{stats_out()},
  };
}

// ---------------------------------------------------------------------------
// Codec round trips

TEST(BinaryCodec, RequestRoundTripEveryVariant) {
  BinaryCodec codec;
  for (const Request& request : all_requests()) {
    std::stringstream wire;
    codec.write_request(wire, request);
    const auto back = codec.read_request(wire);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, request) << "variant index " << request.index();
    EXPECT_FALSE(codec.read_request(wire).has_value()) << "stream should be drained";
  }
}

TEST(BinaryCodec, ResponseRoundTripEveryVariant) {
  BinaryCodec codec;
  for (const Response& response : all_responses()) {
    std::stringstream wire;
    codec.write_response(wire, response);
    const auto back = codec.read_response(wire);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, response) << "variant index " << response.index();
  }
}

TEST(BinaryCodec, BackToBackFramesDecodeInOrder) {
  BinaryCodec codec;
  std::stringstream wire;
  const auto requests = all_requests();
  for (const Request& request : requests) codec.write_request(wire, request);
  for (const Request& request : requests) {
    const auto back = codec.read_request(wire);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, request);
  }
  EXPECT_FALSE(codec.read_request(wire).has_value());
}

TEST(TextCodec, RequestRoundTripEveryVariant) {
  TextCodec codec;
  for (const Request& request : all_requests()) {
    std::stringstream wire;
    codec.write_request(wire, request);
    const auto back = codec.read_request(wire);
    ASSERT_TRUE(back.has_value()) << wire.str();
    EXPECT_EQ(*back, request) << "line: " << wire.str();
  }
}

TEST(TextCodec, ResponseReEncodeIsStable) {
  // Text responses print doubles at display precision, so the value-level
  // round trip is encode -> decode -> encode with identical bytes.
  TextCodec codec;
  for (const Response& response : all_responses()) {
    std::stringstream first;
    codec.write_response(first, response);
    std::stringstream parse(first.str());
    const auto decoded = codec.read_response(parse);
    ASSERT_TRUE(decoded.has_value()) << first.str();
    std::stringstream second;
    codec.write_response(second, *decoded);
    EXPECT_EQ(first.str(), second.str());
  }
}

TEST(TextCodec, BusyResponseLineRoundTrips) {
  // The backpressure refusal is typed, not an err line: `busy <what>
  // limit=<N>` in the text grammar.
  TextCodec codec;
  std::stringstream wire;
  codec.write_response(wire, resp::Busy{"queue", 32});
  EXPECT_EQ(wire.str(), "busy queue limit=32\n");
  const auto back = codec.read_response(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, Response(resp::Busy{"queue", 32}));
}

TEST(TextCodec, MetricsLineCarriesBusyRejections) {
  TextCodec codec;
  ServingMetrics m;
  m.nodes = 5;
  m.busy_rejections = 7;
  std::stringstream wire;
  codec.write_response(wire, resp::MetricsOut{m});
  EXPECT_NE(wire.str().find(" busy_rejected=7"), std::string::npos) << wire.str();
  const auto back = codec.read_response(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(std::get<resp::MetricsOut>(*back).metrics.busy_rejections, 7u);
}

TEST(TextCodec, ParsesCommentsBlanksAndTenantPrefixes) {
  TextCodec codec;
  std::istringstream in(
      "# a comment line\n"
      "\n"
      "   \n"
      "@alpha insert 1 2 0.5   # trailing comment\n"
      "quit\n");
  const auto first = codec.read_request(in);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, Request(req::Insert{"alpha", 1, 2, 0.5}));
  const auto second = codec.read_request(in);
  ASSERT_TRUE(second.has_value());
  EXPECT_TRUE(std::holds_alternative<req::Quit>(*second));
  EXPECT_FALSE(codec.read_request(in).has_value());
}

TEST(TextCodec, OpenFlagsAndNameAddressing) {
  TextCodec codec;
  std::istringstream in(
      "open g.mtx --name a --density 0.3 --target 90 --grass-target 40 "
      "--staleness 0.5 --sync --no-rebuild\n"
      "@b open-sharded g.mtx 4 --partition hash --sync\n"
      "close b\n"
      "autosave snap.bin 5\n"
      "autosave off\n");
  const auto open = codec.read_request(in);
  ASSERT_TRUE(open.has_value());
  const auto* o = std::get_if<req::Open>(&*open);
  ASSERT_NE(o, nullptr);
  EXPECT_EQ(o->name, "a");
  EXPECT_EQ(o->spec.density, 0.3);
  EXPECT_EQ(o->spec.target, 90.0);
  EXPECT_EQ(o->spec.grass_target, 40.0);
  EXPECT_EQ(o->spec.staleness, 0.5);
  EXPECT_TRUE(o->spec.sync);
  EXPECT_TRUE(o->spec.no_rebuild);

  const auto sharded = codec.read_request(in);
  ASSERT_TRUE(sharded.has_value());
  const auto* s = std::get_if<req::OpenSharded>(&*sharded);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->name, "b");
  EXPECT_EQ(s->shards, 4);
  EXPECT_EQ(s->partition, PartitionStrategy::kHash);

  const auto close = codec.read_request(in);
  ASSERT_TRUE(close.has_value());
  EXPECT_EQ(*close, Request(req::Close{"b"}));

  const auto autosave = codec.read_request(in);
  ASSERT_TRUE(autosave.has_value());
  EXPECT_EQ(*autosave, Request(req::Autosave{"", "snap.bin", 5}));

  const auto off = codec.read_request(in);
  ASSERT_TRUE(off.has_value());
  EXPECT_EQ(*off, Request(req::Autosave{"", "", 0}));
}

void expect_text_error(const std::string& line, const std::string& message) {
  TextCodec codec;
  std::istringstream in(line + "\n");
  try {
    (void)codec.read_request(in);
    FAIL() << "no error for: " << line;
  } catch (const ProtocolError& e) {
    EXPECT_EQ(std::string(e.what()), message) << "line: " << line;
    EXPECT_FALSE(e.fatal()) << "text errors are recoverable";
  }
}

TEST(TextCodec, MalformedLinesKeepTheDocumentedMessages) {
  expect_text_error("bogus-command", "unknown command: bogus-command");
  expect_text_error("insert 1 2", "usage: insert <u> <v> <w>");
  expect_text_error("insert abc 2 1.0", "bad node id: 'abc'");
  expect_text_error("insert -1 2 1.0", "node id must be non-negative");
  expect_text_error("insert 1 2 heavy", "bad weight: 'heavy'");
  expect_text_error("open", "open requires a path");
  expect_text_error("open g.mtx --density", "missing value for --density");
  expect_text_error("open g.mtx --density abc", "bad --density: 'abc'");
  expect_text_error("open g.mtx --frobnicate", "unknown option: --frobnicate");
  expect_text_error("open-sharded g.mtx", "usage: open-sharded <g.mtx> <K> [options]");
  expect_text_error("open-sharded g.mtx 0", "shard count must be >= 1");
  expect_text_error("open-sharded g.mtx 2 --partition rings",
                    "bad --partition (want hash or greedy): 'rings'");
  expect_text_error("solve 1", "usage: solve <u> <v>");
  expect_text_error("autosave snap.bin 0", "autosave interval must be >= 1");
  expect_text_error("@ metrics", "empty tenant name");
  expect_text_error("@a quit", "quit takes no tenant (use close a to drop one session)");
  expect_text_error("@a stats", "stats takes no tenant (the snapshot is process-wide)");
  expect_text_error("stats now", "usage: stats");
}

// ---------------------------------------------------------------------------
// The stats verb

TEST(TextCodec, StatsRequestParses) {
  TextCodec codec;
  std::istringstream in("stats\n");
  const auto request = codec.read_request(in);
  ASSERT_TRUE(request.has_value());
  EXPECT_TRUE(std::holds_alternative<req::Stats>(*request));
}

TEST(TextCodec, StatsTableRoundTrips) {
  TextCodec codec;
  const Response response{stats_out()};
  std::stringstream wire;
  codec.write_response(wire, response);
  // Header + one `point` line per series; percentiles only on histograms.
  EXPECT_NE(wire.str().find("ok stats points=3"), std::string::npos) << wire.str();
  EXPECT_NE(wire.str().find("kind=histogram"), std::string::npos) << wire.str();
  const auto back = codec.read_response(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, response);
}

TEST(TextCodec, TruncatedStatsTableIsAnError) {
  TextCodec codec;
  std::istringstream in(
      "ok stats points=2\n"
      "point kind=counter value=1 count=0 sum=0 p50=0 p90=0 p99=0 p999=0 name=x\n");
  try {
    (void)codec.read_response(in);
    FAIL() << "truncated stats table parsed";
  } catch (const ProtocolError& e) {
    EXPECT_NE(std::string(e.what()).find("truncated stats table"), std::string::npos)
        << e.what();
  }
}

TEST(Engine, StatsSnapshotsTheProcessRegistry) {
  Engine engine;
  // The stats request itself increments its own per-verb counter, so the
  // snapshot is guaranteed non-empty even in a fresh process.
  const Response response = engine.handle(req::Stats{});
  const auto* stats = std::get_if<resp::StatsOut>(&response);
  ASSERT_NE(stats, nullptr) << error_message(response);
  bool saw_stats_counter = false;
  for (const resp::StatPoint& p : stats->points) {
    if (p.name.find("ingrass_requests_total") != std::string::npos &&
        p.name.find("verb=\"stats\"") != std::string::npos) {
      saw_stats_counter = true;
      EXPECT_EQ(p.kind, resp::StatPoint::Kind::kCounter);
      EXPECT_GE(p.value, 1.0);
    }
  }
  EXPECT_TRUE(saw_stats_counter);
}

// ---------------------------------------------------------------------------
// Binary framing rejection

std::string encoded_request(const Request& request) {
  BinaryCodec codec;
  std::stringstream wire;
  codec.write_request(wire, request);
  return wire.str();
}

void expect_fatal_frame_error(const std::string& bytes, const std::string& needle) {
  BinaryCodec codec;
  std::istringstream in(bytes);
  try {
    (void)codec.read_request(in);
    FAIL() << "frame accepted; wanted error containing '" << needle << "'";
  } catch (const ProtocolError& e) {
    EXPECT_TRUE(e.fatal()) << e.what();
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos) << e.what();
  }
}

TEST(BinaryCodec, RejectsMalformedFrames) {
  const std::string good = encoded_request(req::Metrics{"a"});

  std::string bad_magic = good;
  bad_magic[0] = 'X';
  expect_fatal_frame_error(bad_magic, "bad magic");

  std::string bad_version = good;
  bad_version[4] = 9;  // version field, little-endian low byte
  expect_fatal_frame_error(bad_version, "unsupported version");

  std::string bad_length = good;
  bad_length[10] = '\x7f';  // declared payload length far beyond the cap
  expect_fatal_frame_error(bad_length, "implausible length");

  std::string bad_tag = good;
  bad_tag[12] = '\x7e';  // unknown request tag inside the payload
  expect_fatal_frame_error(bad_tag, "unknown request tag");

  // A response frame offered to the request reader fails loudly.
  BinaryCodec codec;
  std::stringstream wire;
  codec.write_response(wire, resp::Bye{});
  expect_fatal_frame_error(wire.str(), "unknown request tag");
}

TEST(BinaryCodec, RejectsTruncatedFrames) {
  const std::string good = encoded_request(req::Checkpoint{"tenant", "some/path.bin"});
  // Every strict prefix must be EOF (empty) or a fatal framing error —
  // never a parsed request and never a hang.
  for (std::size_t len = 1; len < good.size(); ++len) {
    BinaryCodec codec;
    std::istringstream in(good.substr(0, len));
    try {
      (void)codec.read_request(in);
      FAIL() << "truncated frame of " << len << " bytes parsed";
    } catch (const ProtocolError& e) {
      EXPECT_TRUE(e.fatal()) << e.what();
    }
  }
}

TEST(BinaryCodec, RejectsTrailingBytesInsideFrame) {
  // Append a byte to the payload and fix up the declared length: the
  // decoder must notice the frame is longer than its message.
  BinaryCodec codec;
  std::stringstream wire;
  codec.write_request(wire, req::Quit{});
  std::string bytes = wire.str();
  bytes.push_back('\0');
  bytes[8] = static_cast<char>(static_cast<unsigned char>(bytes[8]) + 1);
  expect_fatal_frame_error(bytes, "trailing bytes");
}

TEST(BinaryCodec, FramesCarryFrameVersion4) {
  // The shard verbs arrived with frame version 4; the version field is the
  // little-endian u32 right after the 4-byte magic.
  const std::string bytes = encoded_request(req::Stats{});
  ASSERT_GE(bytes.size(), 8u);
  EXPECT_EQ(static_cast<unsigned char>(bytes[4]), 4u);
  EXPECT_EQ(static_cast<unsigned char>(bytes[5]), 0u);
}

TEST(BinaryCodec, RejectsOlderFrameVersions) {
  // A v3 peer (pre-shard-verbs) must get the documented fatal version
  // error, not a silent misparse — the frame layout is versioned, not
  // sniffed.
  std::string v3 = encoded_request(req::Metrics{"a"});
  v3[4] = 3;
  expect_fatal_frame_error(v3, "unsupported version");
  std::string v1 = std::move(v3);
  v1[4] = 1;
  expect_fatal_frame_error(v1, "unsupported version");
}

TEST(BinaryCodec, RejectsImplausibleStatsPointCount) {
  // A response frame claiming 2^31 stats points must die on the count
  // guard, not attempt a huge allocation.
  BinaryCodec codec;
  std::stringstream wire;
  codec.write_response(wire, Response{resp::StatsOut{}});
  std::string bytes = wire.str();
  // Payload: u8 tag (kTagStatsOut) then u32 point count at offset 13.
  bytes[13] = '\x00';
  bytes[14] = '\x00';
  bytes[15] = '\x00';
  bytes[16] = '\x80';
  BinaryCodec reader;
  std::istringstream in(bytes);
  try {
    (void)reader.read_response(in);
    FAIL() << "implausible stats point count parsed";
  } catch (const ProtocolError& e) {
    EXPECT_NE(std::string(e.what()).find("implausible stats point count"),
              std::string::npos)
        << e.what();
  }
}

// ---------------------------------------------------------------------------
// Engine

TEST(Engine, CommandBeforeOpenIsTheDocumentedError) {
  Engine engine;
  EXPECT_EQ(error_message(engine.handle(req::Metrics{""})),
            "no session (use open or restore)");
}

TEST(Engine, UnknownNamedTenant) {
  Engine engine;
  EXPECT_EQ(error_message(engine.handle(req::Apply{"ghost"})),
            "no session named 'ghost' (use open --name ghost)");
}

TEST(Engine, DoubleOpenWithoutCloseFailsThenCloseReopens) {
  Engine engine;
  ASSERT_TRUE(std::holds_alternative<resp::Opened>(engine.handle(open_req("a"))));

  EXPECT_EQ(error_message(engine.handle(open_req("a"))),
            "tenant 'a' is already open (close it first)");

  const Response closed = engine.handle(req::Close{"a"});
  ASSERT_TRUE(std::holds_alternative<resp::Closed>(closed));
  EXPECT_EQ(std::get<resp::Closed>(closed).name, "a");
  EXPECT_TRUE(engine.tenants().empty());

  // The name is free again — and this time as a sharded tenant.
  const Response reopened = engine.handle(open_sharded_req("a", 2));
  ASSERT_TRUE(std::holds_alternative<resp::Opened>(reopened));
  EXPECT_TRUE(std::get<resp::Opened>(reopened).metrics.sharded);
}

TEST(Engine, DefaultTenantIsNamedDefault) {
  Engine engine;
  ASSERT_TRUE(std::holds_alternative<resp::Opened>(engine.handle(open_req(""))));
  EXPECT_EQ(engine.tenants(), std::vector<std::string>{"default"});
  // The "" and "default" spellings address the same tenant.
  EXPECT_EQ(error_message(engine.handle(open_req("default"))),
            "tenant 'default' is already open (close it first)");
  EXPECT_TRUE(std::holds_alternative<resp::MetricsOut>(engine.handle(req::Metrics{"default"})));
}

TEST(Engine, ValidationErrorsMatchTheServeProtocol) {
  Engine engine;
  ASSERT_TRUE(std::holds_alternative<resp::Opened>(engine.handle(open_req(""))));
  const auto expect_err = [&](const Request& request, const std::string& message) {
    EXPECT_EQ(error_message(engine.handle(request)), message);
  };
  expect_err(req::Insert{"", 0, 99, 1.0}, "node id exceeds graph size");
  expect_err(req::Insert{"", 0, 1, 0.0}, "weight must be positive");
  expect_err(req::Insert{"", 3, 3, 1.0}, "self-loop");
  expect_err(req::Insert{"", -1, 3, 1.0}, "node id must be non-negative");
  expect_err(req::Solve{"", 2, 2}, "solve endpoints must differ");
  expect_err(req::ShardMetrics{"", 0}, "shard-metrics requires a sharded session");
}

TEST(Engine, ShardMetricsIndexRange) {
  Engine engine;
  ASSERT_TRUE(std::holds_alternative<resp::Opened>(engine.handle(open_sharded_req("", 2))));
  EXPECT_EQ(error_message(engine.handle(req::ShardMetrics{"", 2})),
            "shard index out of range");
  const Response ok = engine.handle(req::ShardMetrics{"", 1});
  ASSERT_TRUE(std::holds_alternative<resp::ShardMetricsOut>(ok));
  EXPECT_EQ(std::get<resp::ShardMetricsOut>(ok).shard, 1);
}

TEST(Engine, StagedBatchesFlushBeforeReads) {
  Engine engine;
  ASSERT_TRUE(std::holds_alternative<resp::Opened>(engine.handle(open_req(""))));
  const Response staged = engine.handle(req::Insert{"", 0, 24, 1.0});
  ASSERT_TRUE(std::holds_alternative<resp::Staged>(staged));
  EXPECT_EQ(std::get<resp::Staged>(staged).inserts, 1u);

  // metrics flushes the staged record before reporting.
  const Response metrics = engine.handle(req::Metrics{""});
  ASSERT_TRUE(std::holds_alternative<resp::MetricsOut>(metrics));
  EXPECT_EQ(std::get<resp::MetricsOut>(metrics).metrics.counters.batches, 1u);
  EXPECT_EQ(std::get<resp::MetricsOut>(metrics).metrics.counters.inserts_offered, 1u);

  // An explicit apply of the (now empty) pending batch still succeeds.
  const Response applied = engine.handle(req::Apply{""});
  ASSERT_TRUE(std::holds_alternative<resp::Applied>(applied));
}

TEST(Engine, MultiTenantIsolation) {
  Engine engine;
  ASSERT_TRUE(std::holds_alternative<resp::Opened>(engine.handle(open_req("plain"))));
  ASSERT_TRUE(
      std::holds_alternative<resp::Opened>(engine.handle(open_sharded_req("sharded", 3))));
  EXPECT_EQ(engine.tenants(), (std::vector<std::string>{"plain", "sharded"}));

  // Interleave staged updates and applies across the two tenants.
  ASSERT_TRUE(std::holds_alternative<resp::Staged>(
      engine.handle(req::Insert{"plain", 0, 24, 1.0})));
  ASSERT_TRUE(std::holds_alternative<resp::Staged>(
      engine.handle(req::Insert{"sharded", 1, 23, 2.0})));
  ASSERT_TRUE(std::holds_alternative<resp::Staged>(engine.handle(req::Remove{"sharded", 0, 1})));
  ASSERT_TRUE(std::holds_alternative<resp::Applied>(engine.handle(req::Apply{"plain"})));
  ASSERT_TRUE(std::holds_alternative<resp::Applied>(engine.handle(req::Apply{"sharded"})));
  ASSERT_TRUE(std::holds_alternative<resp::Applied>(engine.handle(req::Apply{"sharded"})));

  // Metrics stay independent: each tenant saw only its own traffic.
  const Response pm = engine.handle(req::Metrics{"plain"});
  const Response sm = engine.handle(req::Metrics{"sharded"});
  ASSERT_TRUE(std::holds_alternative<resp::MetricsOut>(pm));
  ASSERT_TRUE(std::holds_alternative<resp::MetricsOut>(sm));
  const ServingMetrics& plain = std::get<resp::MetricsOut>(pm).metrics;
  const ServingMetrics& sharded = std::get<resp::MetricsOut>(sm).metrics;
  EXPECT_FALSE(plain.sharded);
  EXPECT_TRUE(sharded.sharded);
  EXPECT_EQ(sharded.shards, 3);
  EXPECT_EQ(plain.counters.batches, 1u);
  // Only the shards a batch's records route to count an apply.
  EXPECT_GE(sharded.counters.batches, 1u);
  EXPECT_EQ(plain.counters.inserts_offered, 1u);
  EXPECT_EQ(plain.counters.removals_applied, 0u);
  EXPECT_EQ(sharded.counters.removals_applied, 1u);

  // Both solve against their own graphs.
  for (const char* name : {"plain", "sharded"}) {
    const Response solved = engine.handle(req::Solve{name, 0, 24});
    ASSERT_TRUE(std::holds_alternative<resp::Solved>(solved)) << name;
    EXPECT_GT(std::get<resp::Solved>(solved).resistance, 0.0);
  }

  // Closing one leaves the other serving.
  ASSERT_TRUE(std::holds_alternative<resp::Closed>(engine.handle(req::Close{"plain"})));
  EXPECT_TRUE(std::holds_alternative<resp::Error>(engine.handle(req::Metrics{"plain"})));
  EXPECT_TRUE(std::holds_alternative<resp::MetricsOut>(engine.handle(req::Metrics{"sharded"})));
}

TEST(Engine, AutosaveSnapshotsEveryNApplies) {
  const std::string snap = scratch_path("autosave.bin");
  std::remove(snap.c_str());
  Engine engine;
  ASSERT_TRUE(std::holds_alternative<resp::Opened>(engine.handle(open_req(""))));
  const Response armed = engine.handle(req::Autosave{"", snap, 2});
  ASSERT_TRUE(std::holds_alternative<resp::AutosaveOut>(armed));
  EXPECT_EQ(std::get<resp::AutosaveOut>(armed).every, 2u);

  ASSERT_TRUE(std::holds_alternative<resp::Applied>(engine.handle(req::Apply{""})));
  EXPECT_FALSE(std::ifstream(snap).good()) << "one apply must not snapshot yet";

  ASSERT_TRUE(std::holds_alternative<resp::Staged>(engine.handle(req::Insert{"", 0, 24, 1.0})));
  ASSERT_TRUE(std::holds_alternative<resp::Applied>(engine.handle(req::Apply{""})));
  ASSERT_TRUE(std::ifstream(snap).good()) << "second apply must snapshot";

  // The snapshot is a restorable v1 checkpoint carrying the applied state.
  const SessionCheckpoint ck = load_checkpoint(snap);
  EXPECT_EQ(ck.counters.batches, 2u);
  EXPECT_EQ(ck.counters.inserts_offered, 1u);

  // Disarm, apply twice more: no new snapshot (mtime-free check: delete
  // and confirm it stays gone).
  std::remove(snap.c_str());
  ASSERT_TRUE(std::holds_alternative<resp::AutosaveOut>(engine.handle(req::Autosave{"", "", 0})));
  ASSERT_TRUE(std::holds_alternative<resp::Applied>(engine.handle(req::Apply{""})));
  ASSERT_TRUE(std::holds_alternative<resp::Applied>(engine.handle(req::Apply{""})));
  EXPECT_FALSE(std::ifstream(snap).good());
}

TEST(Engine, QuitFlushesAndReportsBye) {
  Engine engine;
  ASSERT_TRUE(std::holds_alternative<resp::Opened>(engine.handle(open_req("a"))));
  ASSERT_TRUE(std::holds_alternative<resp::Staged>(engine.handle(req::Insert{"a", 0, 24, 1.0})));
  const Response bye = engine.handle(req::Quit{});
  ASSERT_TRUE(std::holds_alternative<resp::Bye>(bye));
  const Response metrics = engine.handle(req::Metrics{"a"});
  ASSERT_TRUE(std::holds_alternative<resp::MetricsOut>(metrics));
  EXPECT_EQ(std::get<resp::MetricsOut>(metrics).metrics.counters.batches, 1u)
      << "quit must flush the staged batch";
}

// ---------------------------------------------------------------------------
// serve_stream: the byte-compatible transcript

TEST(ServeStream, TextSessionIsByteCompatible) {
  const std::string ck = scratch_path("stream_ck.bin");
  Engine engine;
  TextCodec codec;
  std::istringstream in(
      "open " + test_mtx() + " --density 0.3 --target 100 --sync\n"
      "insert 0 24 1.0\n"
      "remove 0 1\n"
      "bogus-command\n"
      "insert 0 99 1.0\n"
      "apply\n"
      "checkpoint " + ck + "\n"
      "quit\n");
  std::ostringstream out;
  const ServeOutcome outcome = serve_stream(engine, codec, in, out);
  EXPECT_EQ(outcome, ServeOutcome::kQuit);

  std::vector<std::string> lines;
  {
    std::istringstream split(out.str());
    for (std::string line; std::getline(split, line);) lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 8u) << out.str();
  EXPECT_EQ(lines[0].substr(0, 17), "ok open nodes=25 ");
  EXPECT_EQ(lines[1], "ok staged inserts=1 removals=0");
  EXPECT_EQ(lines[2], "ok staged inserts=1 removals=1");
  EXPECT_EQ(lines[3], "err unknown command: bogus-command");
  EXPECT_EQ(lines[4], "err node id exceeds graph size");
  EXPECT_EQ(lines[5].substr(0, 9), "ok apply ");
  EXPECT_EQ(lines[6], "ok checkpoint path=" + ck);
  EXPECT_EQ(lines[7], "ok quit");
}

TEST(ServeStream, EofFlushesStagedBatches) {
  Engine engine;
  TextCodec codec;
  std::istringstream in(
      "open " + test_mtx() + " --density 0.3 --sync\n"
      "insert 0 24 1.0\n");
  std::ostringstream out;
  EXPECT_EQ(serve_stream(engine, codec, in, out), ServeOutcome::kEof);
  const Response metrics = engine.handle(req::Metrics{""});
  ASSERT_TRUE(std::holds_alternative<resp::MetricsOut>(metrics));
  EXPECT_EQ(std::get<resp::MetricsOut>(metrics).metrics.counters.batches, 1u);
}

TEST(ServeStream, BinarySessionEndToEnd) {
  Engine engine;
  BinaryCodec codec;
  std::stringstream in;
  codec.write_request(in, open_req("t"));
  codec.write_request(in, req::Insert{"t", 0, 24, 1.0});
  codec.write_request(in, req::Apply{"t"});
  codec.write_request(in, req::Solve{"t", 0, 24});
  codec.write_request(in, req::Quit{});
  std::stringstream out;
  EXPECT_EQ(serve_stream(engine, codec, in, out), ServeOutcome::kQuit);

  const auto opened = codec.read_response(out);
  ASSERT_TRUE(opened.has_value());
  ASSERT_TRUE(std::holds_alternative<resp::Opened>(*opened));
  EXPECT_EQ(std::get<resp::Opened>(*opened).metrics.nodes, 25);
  ASSERT_TRUE(std::holds_alternative<resp::Staged>(*codec.read_response(out)));
  ASSERT_TRUE(std::holds_alternative<resp::Applied>(*codec.read_response(out)));
  const auto solved = codec.read_response(out);
  ASSERT_TRUE(solved.has_value());
  ASSERT_TRUE(std::holds_alternative<resp::Solved>(*solved));
  EXPECT_GT(std::get<resp::Solved>(*solved).resistance, 0.0);
  ASSERT_TRUE(std::holds_alternative<resp::Bye>(*codec.read_response(out)));
  EXPECT_FALSE(codec.read_response(out).has_value());
}

TEST(ServeStream, FatalFrameErrorStopsTheStreamButStillFlushes) {
  Engine engine;
  BinaryCodec codec;
  std::stringstream in;
  codec.write_request(in, open_req("t"));
  codec.write_request(in, req::Insert{"t", 0, 24, 1.0});
  in << "garbage that is not a frame";
  std::stringstream out;
  EXPECT_EQ(serve_stream(engine, codec, in, out), ServeOutcome::kEof);
  ASSERT_TRUE(std::holds_alternative<resp::Opened>(*codec.read_response(out)));
  ASSERT_TRUE(std::holds_alternative<resp::Staged>(*codec.read_response(out)));
  const auto err = codec.read_response(out);
  ASSERT_TRUE(err.has_value());
  const auto* e = std::get_if<resp::Error>(&*err);
  ASSERT_NE(e, nullptr);
  EXPECT_NE(e->message.find("bad magic"), std::string::npos);
  // The stream died to lost framing, but like every other end-of-stream
  // path it flushed the staged batch instead of silently dropping it.
  const Response metrics = engine.handle(req::Metrics{"t"});
  ASSERT_TRUE(std::holds_alternative<resp::MetricsOut>(metrics));
  EXPECT_EQ(std::get<resp::MetricsOut>(metrics).metrics.counters.batches, 1u);
}

// ---------------------------------------------------------------------------
// TCP transport

TEST(TcpTransport, TenantsPersistAcrossConnectionsAndCodecs) {
  const std::string port_file = scratch_path("port.txt");
  std::remove(port_file.c_str());
  Engine engine;
  TcpOptions opts;
  opts.port_file = port_file;
  std::thread server([&] { serve_tcp(engine, opts); });
  const std::uint16_t port = wait_for_port_file(port_file);

  BinaryCodec binary;
  {
    // Connection 1 (binary): open a named tenant, stage + apply, drop the
    // connection without quitting.
    TcpClient client(port);
    binary.write_request(client.out(), open_req("kept"));
    binary.write_request(client.out(), req::Insert{"kept", 0, 24, 1.0});
    binary.write_request(client.out(), req::Apply{"kept"});
    client.out().flush();
    ASSERT_TRUE(std::holds_alternative<resp::Opened>(*binary.read_response(client.in())));
    ASSERT_TRUE(std::holds_alternative<resp::Staged>(*binary.read_response(client.in())));
    ASSERT_TRUE(std::holds_alternative<resp::Applied>(*binary.read_response(client.in())));
  }
  {
    // Connection 2 (text — auto-detected): the tenant from connection 1
    // is still live, with its applied batch.
    TcpClient client(port);
    client.out() << "@kept metrics\nquit\n" << std::flush;
    std::string line;
    ASSERT_TRUE(std::getline(client.in(), line));
    EXPECT_EQ(line.substr(0, 11), "ok metrics ") << line;
    EXPECT_NE(line.find("batches=1"), std::string::npos) << line;
    ASSERT_TRUE(std::getline(client.in(), line));
    EXPECT_EQ(line, "ok quit");
  }
  server.join();  // quit on connection 2 stopped the server
}

}  // namespace
}  // namespace ingrass::serve
