// Worst-case on-chip temperature analysis (the third application the
// paper's introduction names).
//
// Steady-state heat conduction on a chip stack discretizes to a 3-D
// resistive network: G_th T = P, where G_th is the thermal-conductance
// Laplacian (plus ambient ties), T the nodal temperature rise, and P the
// per-node power. Design iterations add thermal vias / TSVs — incremental
// edge insertions — after which the hot-spot analysis must be re-run.
//
// The example maintains the sparsifier across via-insertion rounds with
// inGRASS and shows (a) hot-spot temperatures dropping as vias land and
// (b) the analysis cost (preconditioned solve iterations) staying flat.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/ingrass.hpp"
#include "graph/generators.hpp"
#include "solver/sparsifier_solver.hpp"
#include "sparsify/grass.hpp"
#include "spectral/condition_number.hpp"
#include "util/rng.hpp"

using namespace ingrass;

namespace {

constexpr NodeId kNx = 24, kNy = 24, kNz = 3;  // die stack: 3 tiers

NodeId site(NodeId x, NodeId y, NodeId z) { return (z * kNy + y) * kNx + x; }

/// Power map: two hot blocks on the bottom tier, plus a uniform floor,
/// zero-summed through the top-tier heat-sink nodes.
Vec power_map() {
  Vec p(static_cast<std::size_t>(kNx * kNy * kNz), 0.0);
  double total = 0.0;
  auto block = [&](NodeId x0, NodeId y0, NodeId sz, double watts) {
    for (NodeId dy = 0; dy < sz; ++dy) {
      for (NodeId dx = 0; dx < sz; ++dx) {
        p[static_cast<std::size_t>(site(x0 + dx, y0 + dy, 0))] += watts;
        total += watts;
      }
    }
  };
  block(3, 3, 5, 0.8);    // hot block A
  block(15, 14, 6, 0.5);  // hot block B
  // Heat sink: return through the whole top tier.
  const double per_sink = total / static_cast<double>(kNx * kNy);
  for (NodeId y = 0; y < kNy; ++y) {
    for (NodeId x = 0; x < kNx; ++x) {
      p[static_cast<std::size_t>(site(x, y, kNz - 1))] -= per_sink;
    }
  }
  return p;
}

double hotspot(const SparsifierSolver& solver, const Vec& p, long& iters) {
  Vec t(p.size(), 0.0);
  const auto r = solver.solve(p, t);
  iters += r.outer_iterations;
  // Temperature rise of the hottest node relative to the coolest.
  const auto [lo, hi] = std::minmax_element(t.begin(), t.end());
  return *hi - *lo;
}

}  // namespace

int main() {
  Rng rng(29);
  Graph g = make_grid3d(kNx, kNy, kNz, rng, /*w_min=*/0.8, /*w_max=*/1.2);
  std::printf("thermal stack: %d nodes (%dx%dx%d), %lld conductances\n",
              g.num_nodes(), kNx, kNy, kNz, static_cast<long long>(g.num_edges()));

  GrassOptions gopts;
  gopts.target_offtree_density = 0.10;
  const Graph h0 = grass_sparsify(g, gopts).sparsifier;
  const double kappa0 = condition_number(g, h0);
  Ingrass::Options iopts;
  iopts.target_condition = kappa0;
  Ingrass ing(Graph(h0), iopts);
  std::printf("sparsifier kappa = %.1f, setup %.3f s\n\n", kappa0,
              ing.setup_seconds());

  const Vec p = power_map();
  std::printf("%-7s %-10s %-14s %-12s %-10s\n", "round", "hotspot", "solve iters",
              "kappa", "upd (ms)");
  for (int round = 0; round <= 5; ++round) {
    if (round > 0) {
      // Drop a column of thermal vias through the hottest region: strong
      // vertical conductances shortcutting die tiers.
      std::vector<Edge> vias;
      for (int v = 0; v < 12; ++v) {
        const auto x = static_cast<NodeId>(2 + rng.uniform_index(8));
        const auto y = static_cast<NodeId>(2 + rng.uniform_index(8));
        for (NodeId z = 0; z + 1 < kNz; ++z) {
          // New via or widening of an existing one — both are weight
          // additions that G merges and the inGRASS update phase filters.
          const NodeId a = site(x, y, z);
          const NodeId b = site(x, y, z + 1);
          vias.push_back(Edge{std::min(a, b), std::max(a, b), 6.0});
        }
      }
      for (const Edge& e : vias) g.add_or_merge_edge(e.u, e.v, e.w);
      const auto stats = ing.insert_edges(vias);
      SparsifierSolver solver(g, ing.sparsifier());
      long iters = 0;
      const double rise = hotspot(solver, p, iters);
      std::printf("%-7d %-10.3f %-14ld %-12.1f %-10.2f\n", round, rise, iters,
                  condition_number(g, ing.sparsifier()), stats.seconds * 1e3);
    } else {
      SparsifierSolver solver(g, ing.sparsifier());
      long iters = 0;
      const double rise = hotspot(solver, p, iters);
      std::printf("%-7d %-10.3f %-14ld %-12.1f %-10s\n", round, rise, iters, kappa0,
                  "-");
    }
  }

  std::printf(
      "\nThermal vias lower the hot-spot rise; inGRASS absorbs each via batch\n"
      "in O(log N) per edge so the analysis loop never re-sparsifies.\n");
  return 0;
}
