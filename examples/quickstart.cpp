// Quickstart: the minimal inGRASS workflow on a small mesh.
//
//   1. build a graph G and an initial sparsifier H(0) with GRASS
//   2. run the inGRASS setup phase (LRD decomposition) on H(0)
//   3. stream batches of new edges through the O(log N) update phase
//   4. watch density and condition number stay controlled
//
// Also prints the multilevel embedding of a few nodes (the structure of
// the paper's Fig. 2) and the classification of individual edges (the
// include/merge/redistribute cases of Fig. 3).

#include <cstdio>

#include "core/edge_stream.hpp"
#include "core/ingrass.hpp"
#include "graph/generators.hpp"
#include "sparsify/density.hpp"
#include "sparsify/grass.hpp"
#include "spectral/condition_number.hpp"

using namespace ingrass;

int main() {
  Rng rng(42);
  Graph g = make_triangulated_grid(20, 20, rng);
  std::printf("G(0): %d nodes, %lld edges\n", g.num_nodes(),
              static_cast<long long>(g.num_edges()));

  // Initial sparsifier at 10%% off-tree density.
  GrassOptions gopts;
  gopts.target_offtree_density = 0.10;
  Graph h0 = grass_sparsify(g, gopts).sparsifier;
  const double kappa0 = condition_number(g, h0);
  std::printf("H(0): %lld edges, off-tree density %.1f%%, kappa(G,H) = %.1f\n",
              static_cast<long long>(h0.num_edges()),
              100.0 * offtree_density(h0), kappa0);

  // Setup phase.
  const EdgeId h0_edges = h0.num_edges();
  Ingrass::Options iopts;
  iopts.target_condition = kappa0;
  Ingrass ing(std::move(h0), iopts);
  std::printf("setup: %d LRD levels, filtering level %d, %.3f s\n",
              ing.num_levels(), ing.filtering_level(), ing.setup_seconds());

  // The Fig. 2 view: per-level cluster indices of a few nodes.
  std::printf("\nmultilevel embedding vectors (Fig. 2 view):\n");
  for (const NodeId v : {0, 5, 9}) {
    std::printf("  node %d -> [", v);
    const auto vec = ing.embedding().embedding_vector(v);
    for (std::size_t l = 0; l < vec.size(); ++l) {
      std::printf("%s%d", l ? ", " : "", vec[l]);
    }
    std::printf("]\n");
  }

  // Stream 10 batches of new edges.
  EdgeStreamOptions sopts;
  sopts.iterations = 10;
  sopts.total_per_node = 0.24;
  const auto batches = make_edge_stream(g, sopts);

  std::printf("\n%-5s %-8s %-9s %-7s %-14s %-10s\n", "iter", "batch",
              "inserted", "merged", "redistributed", "density");
  for (std::size_t i = 0; i < batches.size(); ++i) {
    for (const Edge& e : batches[i]) g.add_or_merge_edge(e.u, e.v, e.w);
    const auto stats = ing.insert_edges(batches[i]);
    std::printf("%-5zu %-8zu %-9lld %-7lld %-14lld %.1f%%\n", i + 1,
                batches[i].size(), static_cast<long long>(stats.inserted),
                static_cast<long long>(stats.merged),
                static_cast<long long>(stats.redistributed),
                100.0 * offtree_density(ing.sparsifier()));
  }

  const double kappa_final = condition_number(g, ing.sparsifier());
  const double kappa_stale = condition_number(g, grass_sparsify(g, gopts).sparsifier);
  EdgeId streamed = 0;
  for (const auto& b : batches) streamed += static_cast<EdgeId>(b.size());
  const double n = g.num_nodes();
  const double d_all =
      (static_cast<double>(h0_edges + streamed) - (n - 1.0)) / n;
  std::printf("\nfinal: kappa(G,H) = %.1f (target %.1f, fresh GRASS at 10%% gives %.1f)\n",
              kappa_final, kappa0, kappa_stale);
  std::printf("sparsifier grew to %.1f%% off-tree density — below the %.1f%% of "
              "keeping every new edge\n",
              100.0 * offtree_density(ing.sparsifier()), 100.0 * d_all);
  return 0;
}
