// Power-grid ECO scenario (the paper's motivating EDA use case).
//
// A two-layer on-chip power delivery network is analyzed through a
// spectral sparsifier (e.g. as a preconditioner for IR-drop analysis).
// Engineering change orders (ECOs) then add metal straps and vias in
// several rounds. Re-running the full sparsifier per ECO is the cost
// inGRASS removes: each round is absorbed by the O(log N) update phase,
// and we verify the sparsifier quality (condition number) stays at the
// pre-ECO level.

#include <cstdio>
#include <vector>

#include "core/ingrass.hpp"
#include "graph/generators.hpp"
#include "sparsify/density.hpp"
#include "sparsify/grass.hpp"
#include "spectral/condition_number.hpp"
#include "util/timer.hpp"

using namespace ingrass;

namespace {

/// One ECO round: a handful of new straps (horizontal runs on the top
/// layer) and repair vias at random sites.
std::vector<Edge> make_eco_batch(const Graph& g, NodeId nx, NodeId ny, Rng& rng) {
  std::vector<Edge> batch;
  const NodeId per_layer = nx * ny;
  // Two new straps: chords across a random row on the top layer.
  for (int s = 0; s < 2; ++s) {
    const auto y = static_cast<NodeId>(rng.uniform_index(static_cast<std::uint64_t>(ny)));
    const auto x0 = static_cast<NodeId>(rng.uniform_index(static_cast<std::uint64_t>(nx / 2)));
    const NodeId a = per_layer + y * nx + x0;
    const NodeId b = per_layer + y * nx + std::min<NodeId>(nx - 1, x0 + nx / 2);
    if (a != b && !g.has_edge(a, b)) batch.push_back(Edge{a, b, 25.0});
  }
  // Twenty repair vias.
  for (int i = 0; i < 20; ++i) {
    const auto site = static_cast<NodeId>(rng.uniform_index(static_cast<std::uint64_t>(per_layer)));
    const NodeId lower = site;
    const NodeId upper = site + per_layer;
    if (!g.has_edge(lower, upper)) batch.push_back(Edge{lower, upper, 8.0});
  }
  return batch;
}

}  // namespace

int main() {
  const NodeId nx = 40, ny = 40;
  Rng rng(7);
  Graph g = make_power_grid(nx, ny, 2, rng);
  std::printf("power grid: %d nodes, %lld edges (2 metal layers)\n",
              g.num_nodes(), static_cast<long long>(g.num_edges()));

  GrassOptions gopts;
  gopts.target_offtree_density = 0.10;
  Graph h0 = grass_sparsify(g, gopts).sparsifier;
  const double kappa0 = condition_number(g, h0);
  std::printf("pre-ECO sparsifier: density %.1f%%, kappa = %.1f\n",
              100.0 * offtree_density(h0), kappa0);

  const Graph h_stale = h0;  // what you'd analyze with if you never updated
  Ingrass::Options iopts;
  iopts.target_condition = kappa0;
  Ingrass ing(std::move(h0), iopts);
  std::printf("setup: %.3f s (%d levels)\n\n", ing.setup_seconds(), ing.num_levels());

  AccumTimer update_time;
  std::printf("%-6s %-7s %-9s %-10s %-12s %-9s\n", "ECO", "edges", "inserted",
              "kappa", "kappa(stale)", "upd (ms)");
  for (int round = 1; round <= 8; ++round) {
    const auto batch = make_eco_batch(g, nx, ny, rng);
    for (const Edge& e : batch) g.add_or_merge_edge(e.u, e.v, e.w);
    update_time.start();
    const auto stats = ing.insert_edges(batch);
    update_time.stop();
    const double kappa = condition_number(g, ing.sparsifier());
    const double kappa_stale = condition_number(g, h_stale);
    std::printf("%-6d %-7zu %-9lld %-10.1f %-12.1f %-9.2f\n", round, batch.size(),
                static_cast<long long>(stats.inserted), kappa, kappa_stale,
                stats.seconds * 1e3);
  }

  std::printf("\ntotal update time across 8 ECOs: %.3f s (setup was %.3f s)\n",
              update_time.seconds(), ing.setup_seconds());
  std::printf("final density %.1f%% — ECOs absorbed without re-sparsifying\n",
              100.0 * offtree_density(ing.sparsifier()));
  return 0;
}
