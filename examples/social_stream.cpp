// Streaming social-network scenario.
//
// A scale-free friendship graph receives a live stream of new links; a
// spectral sparsifier backs downstream analytics (clustering, diffusion,
// personalized PageRank). inGRASS classifies each arriving batch into
// spectrally-critical links (kept) and redundant ones (weight-folded),
// keeping the sparsifier small with bounded spectral drift. Demonstrates
// the third dataset family from the paper's abstract (social networks).

#include <cstdio>

#include "core/edge_stream.hpp"
#include "core/ingrass.hpp"
#include "graph/generators.hpp"
#include "sparsify/density.hpp"
#include "sparsify/grass.hpp"
#include "spectral/condition_number.hpp"

using namespace ingrass;

int main() {
  Rng rng(2024);
  Graph g = make_barabasi_albert(2'000, 4, rng);
  std::printf("social graph: %d users, %lld friendships (scale-free)\n",
              g.num_nodes(), static_cast<long long>(g.num_edges()));

  GrassOptions gopts;
  gopts.target_offtree_density = 0.50;  // heavier tail needs a denser H(0)
  Graph h0 = grass_sparsify(g, gopts).sparsifier;
  const double kappa0 = condition_number(g, h0);
  std::printf("sparsifier keeps %.1f%% of edges, kappa = %.1f\n\n",
              100.0 * edge_ratio(h0, g), kappa0);

  Ingrass::Options iopts;
  iopts.target_condition = kappa0;
  Ingrass ing(std::move(h0), iopts);

  // Social streams are locality-heavy: most new friendships close
  // triangles (friend-of-friend), a minority are long-range.
  EdgeStreamOptions sopts;
  sopts.iterations = 12;
  sopts.total_per_node = 0.30;
  sopts.locality_fraction = 0.8;
  const auto batches = make_edge_stream(g, sopts);

  EdgeId kept = 0, folded = 0;
  std::printf("%-6s %-8s %-7s %-8s %-9s\n", "batch", "links", "kept", "folded",
              "upd (ms)");
  for (std::size_t i = 0; i < batches.size(); ++i) {
    for (const Edge& e : batches[i]) g.add_or_merge_edge(e.u, e.v, e.w);
    const auto stats = ing.insert_edges(batches[i]);
    kept += stats.inserted;
    folded += stats.merged + stats.redistributed;
    std::printf("%-6zu %-8zu %-7lld %-8lld %-9.2f\n", i + 1, batches[i].size(),
                static_cast<long long>(stats.inserted),
                static_cast<long long>(stats.merged + stats.redistributed),
                stats.seconds * 1e3);
  }

  const double kappa_final = condition_number(g, ing.sparsifier());
  std::printf("\nstream done: kept %lld links, folded %lld (%.0f%% filtered)\n",
              static_cast<long long>(kept), static_cast<long long>(folded),
              100.0 * static_cast<double>(folded) /
                  static_cast<double>(std::max<EdgeId>(1, kept + folded)));
  std::printf("kappa(G, H) after stream: %.1f (started at %.1f)\n", kappa_final,
              kappa0);
  return 0;
}
