// Finite-element adaptive-refinement scenario.
//
// A solver pipeline keeps a spectral sparsifier of the FE stiffness-graph
// to precondition CG solves. Adaptive refinement repeatedly adds edges
// near a "hot" region of the mesh; inGRASS keeps the preconditioner
// current incrementally. We measure the practical payoff directly: CG
// iteration counts with the maintained sparsifier as a (diagonal-bridged)
// proxy stay near the from-scratch quality, while the stale H(0) degrades.

#include <cstdio>
#include <vector>

#include "core/ingrass.hpp"
#include "graph/generators.hpp"
#include "linalg/cg.hpp"
#include "sparsify/density.hpp"
#include "sparsify/grass.hpp"
#include "spectral/condition_number.hpp"
#include "spectral/laplacian.hpp"

using namespace ingrass;

namespace {

/// Refinement pass: densify the mesh around a hot corner by connecting
/// second-hop neighbors there (new basis-function overlaps).
std::vector<Edge> refine_near_corner(const Graph& g, NodeId nx, Rng& rng, int count) {
  std::vector<Edge> batch;
  int attempts = 0;
  while (static_cast<int>(batch.size()) < count && attempts++ < count * 50) {
    // Sample nodes in the lower-left quadrant.
    const auto x = static_cast<NodeId>(rng.uniform_index(static_cast<std::uint64_t>(nx / 3)));
    const auto y = static_cast<NodeId>(rng.uniform_index(static_cast<std::uint64_t>(nx / 3)));
    const NodeId u = y * nx + x;
    // Two-hop partner.
    NodeId v = u;
    for (int h = 0; h < 2; ++h) {
      const auto nbrs = g.neighbors(v);
      if (nbrs.empty()) break;
      v = nbrs[rng.uniform_index(nbrs.size())].to;
    }
    if (u == v || g.has_edge(u, v)) continue;
    bool dup = false;
    for (const Edge& e : batch) {
      if ((e.u == std::min(u, v)) && (e.v == std::max(u, v))) dup = true;
    }
    if (dup) continue;
    batch.push_back(Edge{std::min(u, v), std::max(u, v), rng.uniform(0.8, 1.6)});
  }
  return batch;
}

/// CG iterations to solve L_G x = b (fixed rhs) — the metric the
/// preconditioner quality shows up in.
int cg_iterations(const Graph& g, const Vec& b) {
  const CsrAdjacency csr = build_csr(g);
  const JacobiPreconditioner pre{Vec(csr.degree)};
  CgOptions opts;
  opts.project_nullspace = true;
  opts.rel_tol = 1e-8;
  Vec x(b.size(), 0.0);
  return pcg(laplacian_operator(csr), b, x, &pre, opts).iterations;
}

}  // namespace

int main() {
  const NodeId nx = 36;
  Rng rng(11);
  Graph g = make_triangulated_grid(nx, nx, rng);
  std::printf("FE mesh: %d nodes, %lld edges\n", g.num_nodes(),
              static_cast<long long>(g.num_edges()));

  GrassOptions gopts;
  gopts.target_offtree_density = 0.10;
  Graph h0 = grass_sparsify(g, gopts).sparsifier;
  const Graph h_stale = h0;  // frozen copy for comparison
  const double kappa0 = condition_number(g, h0);
  std::printf("initial sparsifier: density %.1f%%, kappa = %.1f\n\n",
              100.0 * offtree_density(h0), kappa0);

  Ingrass::Options iopts;
  iopts.target_condition = kappa0;
  Ingrass ing(std::move(h0), iopts);

  std::printf("%-6s %-7s %-16s %-14s\n", "pass", "edges", "kappa(maintained)",
              "kappa(stale)");
  for (int pass = 1; pass <= 6; ++pass) {
    const auto batch = refine_near_corner(g, nx, rng, 60);
    for (const Edge& e : batch) g.add_or_merge_edge(e.u, e.v, e.w);
    ing.insert_edges(batch);
    const double k_main = condition_number(g, ing.sparsifier());
    const double k_stale = condition_number(g, h_stale);
    std::printf("%-6d %-7zu %-16.1f %-14.1f\n", pass, batch.size(), k_main, k_stale);
  }

  // Show the downstream effect on an actual solve of the refined system.
  Vec b(static_cast<std::size_t>(g.num_nodes()), 0.0);
  Rng brng(5);
  randomize(b, brng);
  project_out_ones(b);
  std::printf("\nCG on the refined stiffness graph: %d iterations\n",
              cg_iterations(g, b));
  std::printf("CG on maintained sparsifier (same rhs): %d iterations "
              "(%.1f%% of the edges)\n",
              cg_iterations(ing.sparsifier(), b),
              100.0 * static_cast<double>(ing.sparsifier().num_edges()) /
                  static_cast<double>(g.num_edges()));
  return 0;
}
