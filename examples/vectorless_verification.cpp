// Vectorless power-grid integrity verification (one of the applications
// the paper's introduction names for spectrally-sparsified graphs).
//
// Vectorless verification bounds the worst-case IR drop without knowing
// the exact current waveforms: for a set of candidate worst-case current
// injections it solves L_G v = i and checks max |v| against the drop
// budget. Every candidate pattern costs one Laplacian solve, so the solver
// is the bottleneck — and the sparsifier is its preconditioner.
//
// This example verifies a grid, applies ECO batches (new straps), and
// re-verifies. The inGRASS-maintained sparsifier keeps the per-pattern
// solve cost flat across ECOs, while a stale H(0) preconditioner degrades.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/ingrass.hpp"
#include "graph/generators.hpp"
#include "solver/sparsifier_solver.hpp"
#include "sparsify/grass.hpp"
#include "spectral/condition_number.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

using namespace ingrass;

namespace {

/// A candidate worst-case current pattern: a hot block of sinks drawing
/// current, returned through the pad nodes (zero-sum injection vector).
Vec current_pattern(NodeId nx, NodeId ny, NodeId block, Rng& rng) {
  Vec i(static_cast<std::size_t>(2 * nx * ny), 0.0);
  const auto bx = static_cast<NodeId>(rng.uniform_index(static_cast<std::uint64_t>(nx - block)));
  const auto by = static_cast<NodeId>(rng.uniform_index(static_cast<std::uint64_t>(ny - block)));
  double drawn = 0.0;
  for (NodeId dy = 0; dy < block; ++dy) {
    for (NodeId dx = 0; dx < block; ++dx) {
      const NodeId site = (by + dy) * nx + (bx + dx);
      const double amps = 0.5 + rng.uniform();
      i[static_cast<std::size_t>(site)] -= amps;  // lower-layer sink
      drawn += amps;
    }
  }
  // Return the current through four corner pads on the top layer.
  const NodeId per_layer = nx * ny;
  const NodeId pads[4] = {per_layer, per_layer + nx - 1, per_layer + nx * (ny - 1),
                          per_layer + nx * ny - 1};
  for (const NodeId pad : pads) i[static_cast<std::size_t>(pad)] += drawn / 4.0;
  return i;
}

/// Worst voltage drop over a set of candidate patterns; returns the max
/// |v| and accumulates outer PCG iterations into `iters`.
double verify(const SparsifierSolver& solver, NodeId nx, NodeId ny, int patterns,
              std::uint64_t seed, long& iters) {
  Rng rng(seed);
  double worst = 0.0;
  Vec v(static_cast<std::size_t>(2 * nx * ny));
  for (int p = 0; p < patterns; ++p) {
    const Vec i = current_pattern(nx, ny, 6, rng);
    std::fill(v.begin(), v.end(), 0.0);
    const auto r = solver.solve(i, v);
    iters += r.outer_iterations;
    for (const double x : v) worst = std::max(worst, std::abs(x));
  }
  return worst;
}

}  // namespace

int main() {
  const NodeId nx = 36, ny = 36;
  Rng rng(13);
  Graph g = make_power_grid(nx, ny, 2, rng);
  std::printf("vectorless verification: %d-node power grid, %lld edges\n",
              g.num_nodes(), static_cast<long long>(g.num_edges()));

  GrassOptions gopts;
  gopts.target_offtree_density = 0.10;
  const Graph h0 = grass_sparsify(g, gopts).sparsifier;
  const double kappa0 = condition_number(g, h0);
  std::printf("sparsifier kappa = %.1f\n\n", kappa0);

  Ingrass::Options iopts;
  iopts.target_condition = kappa0;
  Ingrass ing(Graph(h0), iopts);

  const int kPatterns = 12;
  std::printf("%-5s %-12s %-14s %-14s %-14s\n", "ECO", "worst drop", "fresh-H iters",
              "stale-H iters", "fresh kappa");
  for (int round = 0; round <= 4; ++round) {
    if (round > 0) {
      // ECO: two new straps + vias, then an O(log N) sparsifier update.
      std::vector<Edge> batch;
      for (int s = 0; s < 24; ++s) {
        const auto a = static_cast<NodeId>(rng.uniform_index(
            static_cast<std::uint64_t>(g.num_nodes())));
        const auto b = static_cast<NodeId>(rng.uniform_index(
            static_cast<std::uint64_t>(g.num_nodes())));
        if (a != b && !g.has_edge(a, b)) {
          batch.push_back(Edge{std::min(a, b), std::max(a, b), 12.0});
        }
      }
      for (const Edge& e : batch) g.add_or_merge_edge(e.u, e.v, e.w);
      ing.insert_edges(batch);
    }

    SparsifierSolver fresh(g, ing.sparsifier());
    SparsifierSolver stale(g, h0);
    long fresh_iters = 0;
    long stale_iters = 0;
    const double worst = verify(fresh, nx, ny, kPatterns, 99, fresh_iters);
    (void)verify(stale, nx, ny, kPatterns, 99, stale_iters);
    const double kappa = condition_number(g, ing.sparsifier());
    std::printf("%-5d %-12.4f %-14ld %-14ld %-14.1f\n", round, worst, fresh_iters,
                stale_iters, kappa);
  }

  std::printf(
      "\nPer-pattern solve cost stays flat with the inGRASS-maintained\n"
      "preconditioner; the stale H(0) pays more iterations every ECO round.\n");
  return 0;
}
