#!/bin/sh
# Produce one merged ingrass-bench/1 snapshot (BENCH_*.json) from the
# bench binaries, under pinned workload knobs so two runs of this script
# measure the same work and tools/bench_diff.py can compare them.
#
# usage: bench_snapshot.sh [--quick] <build-dir> <out.json>
#
#   --quick   serving-layer benches + kernel micro only (the seconds-
#             scale subset CI can afford); records keep the exact keys
#             of the full snapshot, so a quick run diffs cleanly against
#             a committed full one — the session records just report as
#             "gone" (not a failure).
#
# The full snapshot covers: the solve-path kernel micro records (SpMV,
# fused CG vector pass, fp32/fp64 preconditioner apply, end-to-end
# solve), ThreadPool scaling of the data-parallel passes, session
# throughput under the three rebuild policies, sharded (4) vs unsharded
# (1) dispatch, TCP aggregate at 1/4/16 clients in both transports, the
# 1000-connection mostly-idle fleet in both transports (peak RSS
# included), and distributed-vs-local serving at 2/4 shards over
# loopback (bench_serve_dist). The quick subset keeps the serving-layer
# benches plus the kernel micro records, so CI gates kernel regressions
# too.
#
# Since the benches share the server's obs registry in-process, every
# serving run additionally yields latency-percentile records (serve_tcp.solve_latency p50/p99 per
# mode and client count; session.rebuild_cost per rebuild policy) that
# bench_diff.py gates with a one-sided p99 ceiling.
set -eu

quick=0
if [ "${1:-}" = "--quick" ]; then
  quick=1
  shift
fi
if [ $# -ne 2 ]; then
  echo "usage: bench_snapshot.sh [--quick] <build-dir> <out.json>" >&2
  exit 2
fi
# Absolute paths: the benches run from a scratch cwd below.
build=$(cd "$1" && pwd)
case $2 in
  /*) out=$2 ;;
  *) out=$(pwd)/$2 ;;
esac

# Pinned workload: one representative case, scaled down so the full
# snapshot stays minutes-scale. Changing any of these invalidates
# comparisons against older snapshots.
INGRASS_BENCH_CASES=G2_circuit
INGRASS_BENCH_SCALE=0.25
INGRASS_BENCH_SEED=2024
export INGRASS_BENCH_CASES INGRASS_BENCH_SCALE INGRASS_BENCH_SEED

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
cd "$tmp"  # bench binaries drop scratch files (grid .mtx, port files) in cwd

echo "== micro: solve-path kernels" >&2
"$build/bench/bench_micro" --reps 20 --json "$tmp/micro.json" >&2

echo "== serve_tcp: 1/4/16-client aggregate, both transports" >&2
"$build/bench/bench_serve_tcp" --rounds 10 --json "$tmp/tcp_scaling.json" >&2

echo "== serve_tcp: 1000-connection mostly-idle fleet, both transports" >&2
"$build/bench/bench_serve_tcp" --clients 1000 --idle-frac 0.95 --rounds 10 \
  --json "$tmp/tcp_idle.json" >&2

echo "== serve_dist: dist-vs-local at 2/4 shards over loopback" >&2
"$build/bench/bench_serve_dist" --json "$tmp/serve_dist.json" >&2

parts="$tmp/micro.json $tmp/tcp_scaling.json $tmp/tcp_idle.json $tmp/serve_dist.json"
if [ "$quick" -eq 0 ]; then
  echo "== parallel: ThreadPool scaling" >&2
  "$build/bench/bench_parallel" --reps 10 --json "$tmp/parallel.json" >&2
  parts="$parts $tmp/parallel.json"
  echo "== session: rebuild policies (never/sync/async)" >&2
  "$build/bench/bench_session" --json "$tmp/session.json" >&2
  echo "== session: unsharded (1) vs sharded (4) dispatch" >&2
  "$build/bench/bench_session" --shards 1 --json "$tmp/shard1.json" >&2
  "$build/bench/bench_session" --shards 4 --json "$tmp/shard4.json" >&2
  parts="$parts $tmp/session.json $tmp/shard1.json $tmp/shard4.json"
fi

# Merge the per-binary documents into one snapshot, refusing key clashes.
python3 - "$out" $parts <<'EOF'
import json, sys

out_path, parts = sys.argv[1], sys.argv[2:]
merged, seen = [], set()
for path in parts:
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    assert doc.get("schema") == "ingrass-bench/1", path
    for rec in doc["benchmarks"]:
        key = (rec["name"], tuple(sorted(rec.get("params", {}).items())))
        if key in seen:
            raise SystemExit(f"duplicate benchmark key across parts: {key}")
        seen.add(key)
        merged.append(rec)
with open(out_path, "w", encoding="utf-8") as f:
    json.dump({"schema": "ingrass-bench/1", "benchmarks": merged}, f, indent=2)
    f.write("\n")
print(f"wrote {out_path}: {len(merged)} benchmark records")
EOF
