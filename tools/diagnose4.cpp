// Scratch diagnostic 4: stream-parameter sweep — find the workload regime
// that reproduces Table II's separation (inGRASS-D << Random-D, strong
// kappa perturbation, inGRASS kappa on target).
#include <cstdio>

#include "core/edge_stream.hpp"
#include "core/ingrass.hpp"
#include "graph/generators.hpp"
#include "sparsify/density.hpp"
#include "sparsify/grass.hpp"
#include "sparsify/random_update.hpp"
#include "spectral/condition_number.hpp"

using namespace ingrass;

int main() {
  Rng grng(1);
  const Graph g0 = make_triangulated_grid(50, 50, grng);
  GrassOptions gopts;
  gopts.target_offtree_density = 0.10;
  const Graph h0 = grass_sparsify(g0, gopts).sparsifier;
  const double k0 = condition_number(g0, h0);
  std::printf("k0 = %.1f\n", k0);

  struct P {
    double loc;
    int hops;
    double factor;
  };
  const P params[] = {
      {0.95, 2, 8.0}, {0.95, 3, 4.0}, {0.95, 4, 2.0}, {1.0, 3, 1.0},
      {1.0, 4, 1.0},  {0.9, 4, 2.0},  {0.97, 4, 4.0},
  };
  for (const P& p : params) {
    EdgeStreamOptions sopts;
    sopts.locality_fraction = p.loc;
    sopts.local_hops = p.hops;
    sopts.global_weight_factor = p.factor;
    const auto batches = make_edge_stream(g0, sopts);
    Graph g = g0;
    for (const auto& b : batches) {
      for (const Edge& e : b) g.add_or_merge_edge(e.u, e.v, e.w);
    }
    const double stale = condition_number(g, h0);

    Ingrass::Options iopts;
    iopts.target_condition = k0;
    Ingrass ing{Graph(h0), iopts};
    for (const auto& b : batches) ing.insert_edges(b);
    const double k_ing = condition_number(g, ing.sparsifier());

    Graph hr = h0;
    {
      Graph gr = g0;
      std::uint64_t seed = 99;
      for (const auto& b : batches) {
        for (const Edge& e : b) gr.add_or_merge_edge(e.u, e.v, e.w);
        RandomUpdateOptions ropts;
        ropts.target_condition = k0;
        ropts.seed = seed++;
        random_update(gr, hr, b, ropts);
      }
    }
    std::printf(
        "loc=%.2f hops=%d f=%.0f | stale/k0=%5.1f | inGRASS k=%6.1f D=%.3f | "
        "random D=%.3f\n",
        p.loc, p.hops, p.factor, stale / k0, k_ing,
        offtree_density(ing.sparsifier()), offtree_density(hr));
  }
  return 0;
}
