#!/usr/bin/env python3
"""Markdown link checker: docs rot fails the build.

Walks every *.md file in the repository (skipping build trees and .git),
extracts inline links and images, and verifies that

  - relative file targets exist (fragments and queries stripped),
  - intra-document fragment links (#heading) match a real heading,
  - reference-style link definitions resolve the same way.

External (http/https/mailto) targets are intentionally not fetched — CI
must stay hermetic — but obviously malformed ones (empty target) still
fail. Exits non-zero listing every broken link.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

SKIP_DIRS = {".git", "build", "build-asan", "third_party", "_deps"}

INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REF_DEF = re.compile(r"^\s*\[[^\]]+\]:\s*(\S+)", re.MULTILINE)
HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, spaces to dashes, drop punctuation."""
    slug = heading.strip().lower()
    slug = re.sub(r"[^\w\- ]", "", slug, flags=re.UNICODE)
    return slug.replace(" ", "-")


def md_files(root: Path) -> list[Path]:
    out = []
    for path in root.rglob("*.md"):
        if not any(part in SKIP_DIRS for part in path.parts):
            out.append(path)
    return sorted(out)


def headings(markdown: str) -> set[str]:
    """Anchor slugs of a document's real headings — code fences stripped
    first, or '#'-prefixed shell comments inside ``` blocks would register
    as headings and mask broken fragment links."""
    return {github_slug(h) for h in HEADING.findall(CODE_FENCE.sub("", markdown))}


def check_file(path: Path, root: Path) -> list[str]:
    raw = path.read_text(encoding="utf-8")
    text = CODE_FENCE.sub("", raw)  # links inside code fences are examples
    anchors = headings(raw)
    errors = []

    targets = INLINE_LINK.findall(text) + REF_DEF.findall(text)
    for target in targets:
        target = target.strip("<>")
        if not target:
            errors.append(f"{path.relative_to(root)}: empty link target")
            continue
        if re.match(r"^[a-zA-Z][a-zA-Z0-9+.-]*:", target):
            continue  # http:, https:, mailto:, ... — not checked offline
        base, _, fragment = target.partition("#")
        if not base:
            if fragment and github_slug(fragment) not in anchors:
                errors.append(
                    f"{path.relative_to(root)}: broken anchor '#{fragment}'")
            continue
        base = base.split("?")[0]
        dest = (path.parent / base).resolve()
        if not dest.exists():
            errors.append(
                f"{path.relative_to(root)}: broken link '{target}' "
                f"(no such file: {base})")
            continue
        if fragment and dest.suffix == ".md":
            dest_anchors = headings(dest.read_text(encoding="utf-8"))
            if github_slug(fragment) not in dest_anchors:
                errors.append(
                    f"{path.relative_to(root)}: broken anchor "
                    f"'{target}' (no heading '#{fragment}' in {base})")
    return errors


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    files = md_files(root)
    errors = []
    for path in files:
        errors.extend(check_file(path, root))
    if errors:
        print(f"check_links: {len(errors)} broken link(s) in {len(files)} files:")
        for e in errors:
            print(f"  {e}")
        return 1
    print(f"check_links: OK ({len(files)} markdown files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
