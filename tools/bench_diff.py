#!/usr/bin/env python3
"""Compare two ingrass-bench/1 snapshots: perf regressions fail the build.

Usage:
  bench_diff.py BASELINE.json CURRENT.json [--tolerance 0.10]
  bench_diff.py --self-test

Both files are BENCH_*.json documents written by the bench binaries'
--json flag (schema "ingrass-bench/1"). Records are matched by benchmark
name plus the full set of identifying params; a record present on only
one side is reported but never fails the run (benchmarks come and go
across PRs — only a *measured regression* should gate).

For every matched pair, one-sided checks with a relative noise band
`--tolerance` (default 0.10 = 10%):

  - throughput (when both sides report it) must not drop below
    baseline * (1 - tolerance),
  - median_seconds (when both sides are > 0) must not rise above
    baseline * (1 + tolerance),
  - metrics.p99_seconds (when both sides carry it) must not rise above
    baseline * (1 + tolerance) — the gate for percentile record kinds
    (*.solve_latency, *.rebuild_cost), whose p50 is reported but never
    gates: tails regress first and noise-band p50 checks double the
    false-positive rate for no added coverage.

Improvements never fail. Exit status: 0 = no regression, 1 = at least
one regression, 2 = bad invocation/input. Output is one line per
comparison so CI logs read as a table.
"""

from __future__ import annotations

import json
import sys
import tempfile
from pathlib import Path

SCHEMA = "ingrass-bench/1"


def load(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        raise SystemExit(f"bench_diff: cannot read {path}: {e}")
    if doc.get("schema") != SCHEMA:
        raise SystemExit(
            f"bench_diff: {path}: expected schema {SCHEMA!r}, "
            f"got {doc.get('schema')!r}"
        )
    out = {}
    for rec in doc.get("benchmarks", []):
        key = (rec["name"], tuple(sorted(rec.get("params", {}).items())))
        if key in out:
            raise SystemExit(f"bench_diff: {path}: duplicate record {key}")
        out[key] = rec
    return out


def describe(key) -> str:
    name, params = key
    inside = ", ".join(f"{k}={v}" for k, v in params)
    return f"{name}[{inside}]" if inside else name


def diff(baseline: dict, current: dict, tolerance: float) -> int:
    regressions = 0
    for key in sorted(set(baseline) | set(current)):
        label = describe(key)
        if key not in current:
            print(f"  gone      {label} (baseline only — not a failure)")
            continue
        if key not in baseline:
            print(f"  new       {label} (current only — not a failure)")
            continue
        base, cur = baseline[key], current[key]
        verdicts = []
        bt, ct = base.get("throughput", 0.0), cur.get("throughput", 0.0)
        if bt > 0 and ct > 0:
            floor = bt * (1.0 - tolerance)
            ok = ct >= floor
            verdicts.append((ok, f"throughput {ct:.6g} vs {bt:.6g} "
                                 f"(floor {floor:.6g})"))
        bm, cm = base.get("median_seconds", 0.0), cur.get("median_seconds", 0.0)
        if bm > 0 and cm > 0:
            ceil = bm * (1.0 + tolerance)
            ok = cm <= ceil
            verdicts.append((ok, f"median {cm:.6g}s vs {bm:.6g}s "
                                 f"(ceiling {ceil:.6g}s)"))
        bx, cx = base.get("metrics", {}), cur.get("metrics", {})
        bp, cp = bx.get("p99_seconds", 0.0), cx.get("p99_seconds", 0.0)
        if bp > 0 and cp > 0:
            ceil = bp * (1.0 + tolerance)
            ok = cp <= ceil
            tail = ""
            if bx.get("p50_seconds", 0.0) > 0 and cx.get("p50_seconds", 0.0) > 0:
                tail = (f"; p50 {cx['p50_seconds']:.6g}s vs "
                        f"{bx['p50_seconds']:.6g}s (informational)")
            verdicts.append((ok, f"p99 {cp:.6g}s vs {bp:.6g}s "
                                 f"(ceiling {ceil:.6g}s){tail}"))
        if not verdicts:
            print(f"  skip      {label} (no comparable measurements)")
            continue
        bad = [text for ok, text in verdicts if not ok]
        if bad:
            regressions += 1
            print(f"  REGRESSED {label}: " + "; ".join(bad))
        else:
            print(f"  ok        {label}: " + "; ".join(t for _, t in verdicts))
    return regressions


def self_test() -> int:
    """Exercise the comparator on synthetic snapshots (no bench binaries)."""
    def doc(records):
        return {"schema": SCHEMA, "benchmarks": records}

    def rec(name, params, median, throughput):
        return {"name": name, "params": params, "reps": 1,
                "median_seconds": median, "stddev_seconds": 0.0,
                "throughput": throughput, "throughput_unit": "ops/s"}

    def pct(name, params, p50, p99):
        # Percentile record kinds (solve_latency / rebuild_cost): no
        # throughput, no median — only metrics.p99_seconds gates.
        return {"name": name, "params": params, "reps": 1,
                "median_seconds": 0.0, "stddev_seconds": 0.0,
                "metrics": {"p50_seconds": p50, "p99_seconds": p99,
                            "count": 100.0, "sum_seconds": p50 * 100.0}}

    base = doc([
        rec("a", {"case": "x"}, 1.0, 100.0),   # will regress on throughput
        rec("b", {"case": "x"}, 1.0, 100.0),   # will improve
        rec("c", {"case": "x"}, 1.0, 100.0),   # within band
        rec("gone", {}, 1.0, 100.0),           # disappears
        pct("lat", {"mode": "event"}, 0.001, 0.010),   # p99 will regress
        pct("lat", {"mode": "thread"}, 0.001, 0.010),  # p99 will improve
        pct("cost", {"mode": "sync"}, 0.050, 0.100),   # within band
    ])
    cur = doc([
        rec("a", {"case": "x"}, 1.0, 80.0),
        rec("b", {"case": "x"}, 0.5, 200.0),
        rec("c", {"case": "x"}, 1.05, 95.0),
        rec("new", {}, 1.0, 100.0),            # appears
        # p50 regresses tenfold too, but only p99 gates.
        pct("lat", {"mode": "event"}, 0.010, 0.020),
        pct("lat", {"mode": "thread"}, 0.0005, 0.002),
        pct("cost", {"mode": "sync"}, 0.055, 0.105),
    ])
    with tempfile.TemporaryDirectory() as tmp:
        bp, cp = Path(tmp, "base.json"), Path(tmp, "cur.json")
        bp.write_text(json.dumps(base))
        cp.write_text(json.dumps(cur))
        n = diff(load(str(bp)), load(str(cp)), 0.10)
    if n != 2:
        print(f"self-test FAILED: expected exactly 2 regressions, got {n}")
        return 1
    print("self-test passed")
    return 0


def main(argv: list[str]) -> int:
    args = list(argv[1:])
    if args == ["--self-test"]:
        return self_test()
    tolerance = 0.10
    if "--tolerance" in args:
        i = args.index("--tolerance")
        try:
            tolerance = float(args[i + 1])
        except (IndexError, ValueError):
            print(__doc__.strip(), file=sys.stderr)
            return 2
        del args[i:i + 2]
    if len(args) != 2 or tolerance < 0:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    baseline, current = load(args[0]), load(args[1])
    print(f"bench_diff: {args[0]} -> {args[1]} (tolerance {tolerance:.0%})")
    regressions = diff(baseline, current, tolerance)
    if regressions:
        print(f"bench_diff: {regressions} regression(s) past the "
              f"{tolerance:.0%} band")
        return 1
    print("bench_diff: no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
