// Scratch diagnostic 3: which update mechanism damages kappa on
// locality-concentrated streams (FEM-refinement style)?
#include <cstdio>
#include <vector>

#include "core/ingrass.hpp"
#include "graph/generators.hpp"
#include "sparsify/grass.hpp"
#include "spectral/condition_number.hpp"

using namespace ingrass;

namespace {

std::vector<Edge> refine_near_corner(const Graph& g, NodeId nx, Rng& rng, int count) {
  std::vector<Edge> batch;
  int attempts = 0;
  while (static_cast<int>(batch.size()) < count && attempts++ < count * 50) {
    const auto x = static_cast<NodeId>(rng.uniform_index(static_cast<std::uint64_t>(nx / 3)));
    const auto y = static_cast<NodeId>(rng.uniform_index(static_cast<std::uint64_t>(nx / 3)));
    const NodeId u = y * nx + x;
    NodeId v = u;
    for (int h = 0; h < 2; ++h) {
      const auto nbrs = g.neighbors(v);
      if (nbrs.empty()) break;
      v = nbrs[rng.uniform_index(nbrs.size())].to;
    }
    if (u == v || g.has_edge(u, v)) continue;
    bool dup = false;
    for (const Edge& e : batch) {
      if ((e.u == std::min(u, v)) && (e.v == std::max(u, v))) dup = true;
    }
    if (dup) continue;
    batch.push_back(Edge{std::min(u, v), std::max(u, v), rng.uniform(0.8, 1.6)});
  }
  return batch;
}

}  // namespace

int main() {
  const NodeId nx = 36;
  for (const double frac : {1.0, 0.5, 0.25, 0.0}) {
    Rng rng(11);
    Graph g = make_triangulated_grid(nx, nx, rng);
    GrassOptions gopts;
    gopts.target_offtree_density = 0.10;
    Graph h0 = grass_sparsify(g, gopts).sparsifier;
    const double kappa0 = condition_number(g, h0);

    Ingrass::Options iopts;
    iopts.target_condition = kappa0;
    iopts.fold_weight_fraction = frac;
    Ingrass ing{Graph(h0), iopts};
    for (int pass = 1; pass <= 6; ++pass) {
      auto batch = refine_near_corner(g, nx, rng, 60);
      for (const Edge& e : batch) g.add_or_merge_edge(e.u, e.v, e.w);
      ing.insert_edges(batch);
    }
    const ConditionNumberResult r =
        relative_condition_number(g, ing.sparsifier());
    std::printf("fold=%.2f kappa0=%.1f -> kappa=%.1f (lmax=%.1f lmin=%.3f) edges=%lld\n",
                frac, kappa0, r.kappa, r.lambda_max, r.lambda_min,
                static_cast<long long>(ing.sparsifier().num_edges()));
  }
  return 0;
}
