// Scratch diagnostic 5: why does inGRASS-D overshoot GRASS-D on the
// circuit analogs? Dump per-level cluster-size distributions, the chosen
// filtering level, and the per-batch insert/merge/redistribute breakdown.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/edge_stream.hpp"
#include "core/ingrass.hpp"
#include "graph/generators.hpp"
#include "sparsify/density.hpp"
#include "sparsify/grass.hpp"
#include "spectral/condition_number.hpp"
#include "util/env.hpp"

using namespace ingrass;

int main() {
  const std::string name = env_string("CASE", "G2_circuit");
  const double scale = env_double("SCALE", 0.25);
  Rng rng(0xC0FFEE);
  const Graph g0 = make_paper_testcase(name, scale, rng);
  std::printf("case=%s N=%d E=%lld\n", name.c_str(), g0.num_nodes(),
              static_cast<long long>(g0.num_edges()));

  GrassOptions gopts;
  gopts.target_offtree_density = 0.10;
  const Graph h0 = grass_sparsify(g0, gopts).sparsifier;
  const double k0 = condition_number(g0, h0);
  std::printf("k0 = %.1f  cap = %.1f\n", k0, k0 / 2.0);

  Ingrass::Options iopts;
  iopts.target_condition = k0;
  Ingrass ing(Graph(h0), iopts);
  const auto& emb = ing.embedding();
  for (int l = 0; l < emb.num_levels(); ++l) {
    // Size distribution: max, median, #clusters.
    std::vector<NodeId> sizes;
    for (NodeId c = 0; c < emb.num_clusters(l); ++c) sizes.push_back(emb.cluster_size(l, c));
    std::sort(sizes.begin(), sizes.end());
    const NodeId med = sizes[sizes.size() / 2];
    const NodeId p95 = sizes[static_cast<std::size_t>(0.95 * (sizes.size() - 1))];
    std::printf("level %d: clusters=%u max=%u p95=%u med=%u%s\n", l, emb.num_clusters(l),
                emb.max_cluster_size(l), p95, med,
                l == ing.filtering_level() ? "   <= filtering level" : "");
  }

  const auto batches = make_edge_stream(g0, {});
  Graph g = g0;
  for (const auto& b : batches) {
    for (const Edge& e : b) g.add_or_merge_edge(e.u, e.v, e.w);
  }

  // Sweep the filtering level: at each level run the whole stream and
  // report density + achieved kappa against the target.
  for (int level = 0; level < emb.num_levels(); ++level) {
    Ingrass::Options lopts = iopts;
    lopts.filtering_level_override = level;
    Ingrass run(Graph(h0), lopts);
    EdgeId ins = 0, mrg = 0, red = 0;
    for (const auto& b : batches) {
      const auto st = run.insert_edges(b);
      ins += st.inserted;
      mrg += st.merged;
      red += st.redistributed;
    }
    std::printf(
        "level %2d: density %.3f  kappa %7.1f  (ins=%lld mrg=%lld red=%lld)%s\n", level,
        offtree_density(run.sparsifier()), condition_number(g, run.sparsifier()),
        static_cast<long long>(ins), static_cast<long long>(mrg),
        static_cast<long long>(red),
        level == ing.filtering_level() ? "   <= auto choice" : "");
  }
  return 0;
}
