// ingrass_diagnose — developer diagnostics CLI.
//
// Consolidates the one-off scratch diagnostics that grew alongside the
// reproduction (formerly tools/diagnose.cpp ... diagnose6.cpp) into one
// binary with a subcommand per investigation:
//
//   locality      kappa/density regime vs stream locality
//   lanczos       Lanczos ghost eigenvalues + embedding rank correlation
//   fold          which update mechanism damages kappa on local streams
//   stream-sweep  stream-parameter sweep for Table II's separation
//   filtering     cluster-size distributions + filtering-level sweep
//   resistance    multilevel resistance bound vs exact effective resistance
//   all           run every diagnostic in sequence
//
// `filtering` and `resistance` honor CASE (paper testcase name, default
// G2_circuit) and SCALE (size multiplier, default 0.25) from the
// environment. Exit status 0 on success, 1 on usage errors.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/edge_stream.hpp"
#include "core/ingrass.hpp"
#include "graph/generators.hpp"
#include "linalg/lanczos.hpp"
#include "sparsify/density.hpp"
#include "sparsify/grass.hpp"
#include "sparsify/random_update.hpp"
#include "spectral/condition_number.hpp"
#include "spectral/effective_resistance.hpp"
#include "spectral/laplacian.hpp"
#include "spectral/resistance_embedding.hpp"
#include "util/env.hpp"
#include "util/stats.hpp"

using namespace ingrass;

namespace {

using EdgeBatches = std::vector<std::vector<Edge>>;

// Fold every streamed batch into `g`.
void apply_batches(Graph& g, const EdgeBatches& batches) {
  for (const auto& b : batches) {
    for (const Edge& e : b) g.add_or_merge_edge(e.u, e.v, e.w);
  }
}

// Random-update baseline: replay the stream against h0 with the
// density-matched random updater and return the resulting sparsifier.
Graph random_baseline(const Graph& g0, const Graph& h0, const EdgeBatches& batches,
                      double target_condition) {
  Graph hr = h0;
  Graph gr = g0;
  std::uint64_t seed = 99;
  for (const auto& b : batches) {
    for (const Edge& e : b) gr.add_or_merge_edge(e.u, e.v, e.w);
    RandomUpdateOptions ropts;
    ropts.target_condition = target_condition;
    ropts.seed = seed++;
    random_update(gr, hr, b, ropts);
  }
  return hr;
}

// --- locality: kappa/density regime of the incremental protocol ----------

int run_locality() {
  std::puts("== locality: kappa/density regime vs stream locality ==");
  const NodeId side = 40;
  for (const double locality : {0.5, 0.8, 0.9, 0.95}) {
    Rng rng(1);
    Graph g0 = make_triangulated_grid(side, side, rng);
    GrassOptions gopts;
    gopts.target_offtree_density = 0.10;
    const Graph h0 = grass_sparsify(g0, gopts).sparsifier;
    const double k0 = condition_number(g0, h0);

    EdgeStreamOptions sopts;
    sopts.total_per_node = 0.24;
    sopts.locality_fraction = locality;
    const auto batches = make_edge_stream(g0, sopts);
    Graph g = g0;
    apply_batches(g, batches);
    const double k_stale = condition_number(g, h0);

    Ingrass::Options iopts;
    iopts.target_condition = k0;
    iopts.fold_weight_fraction = 0.0;
    Ingrass ing{Graph(h0), iopts};
    for (const auto& b : batches) ing.insert_edges(b);
    const double k_ing = condition_number(g, ing.sparsifier());

    const Graph hr = random_baseline(g0, h0, batches, k0);
    std::printf(
        "loc=%.2f | k0=%6.1f stale=%6.1f | inGRASS k=%6.1f D=%.3f lvl=%d | "
        "random D=%.3f | d_all=%.3f\n",
        locality, k0, k_stale, k_ing, offtree_density(ing.sparsifier()),
        ing.filtering_level(), offtree_density(hr),
        offtree_density_with(h0, static_cast<EdgeId>(0.24 * side * side)));
  }
  return 0;
}

// --- lanczos: ghost eigenvalues + embedding accuracy ---------------------

int run_lanczos() {
  std::puts("== lanczos: ghost eigenvalues + embedding rank correlation ==");
  {
    Rng rng(2);
    const Graph g = make_grid2d(8, 8, rng);
    const CsrAdjacency csr = build_csr(g);
    for (const int iters : {20, 40, 60, 63}) {
      LanczosOptions opts;
      opts.max_iters = iters;
      opts.deflate_ones = true;
      const auto s = lanczos_extreme_eigenvalues(laplacian_operator(csr), 64, opts);
      std::printf("lanczos iters=%2d -> lmin=%.3e lmax=%.4f (used %d)\n", iters,
                  s.lambda_min, s.lambda_max, s.iterations);
    }
  }
  // Embedding rank correlation vs options.
  Rng rng(3);
  const Graph g = make_triangulated_grid(10, 10, rng);
  const EffectiveResistanceOracle oracle(g);
  std::vector<std::pair<NodeId, NodeId>> pairs;
  Rng prng(17);
  for (int i = 0; i < 60; ++i) {
    const auto u = static_cast<NodeId>(prng.uniform_index(100));
    const auto v = static_cast<NodeId>(prng.uniform_index(100));
    if (u != v) pairs.emplace_back(u, v);
  }
  for (const int order : {12, 24, 48}) {
    for (const int smooth : {0, 2, 6, 12}) {
      ResistanceEmbedding::Options opts;
      opts.order = order;
      opts.smoothing_steps = smooth;
      const ResistanceEmbedding emb = ResistanceEmbedding::build(g, opts);
      int concordant = 0, total = 0;
      RunningStats err;
      for (std::size_t i = 0; i + 1 < pairs.size(); i += 2) {
        const auto [a, b] = pairs[i];
        const auto [c, d] = pairs[i + 1];
        const double ed = oracle.resistance(a, b) - oracle.resistance(c, d);
        const double dd = emb.estimate(a, b) - emb.estimate(c, d);
        if (std::abs(ed) < 1e-6) continue;
        ++total;
        if ((ed > 0) == (dd > 0)) ++concordant;
      }
      for (const auto& [u, v] : pairs) {
        err.add(rel_err(emb.estimate(u, v), oracle.resistance(u, v)));
      }
      std::printf("order=%2d smooth=%2d -> concord=%.2f meanrel=%.3f\n", order,
                  smooth, static_cast<double>(concordant) / total, err.mean());
    }
  }
  return 0;
}

// --- fold: update-mechanism damage on locality-concentrated streams ------

std::vector<Edge> refine_near_corner(const Graph& g, NodeId nx, Rng& rng, int count) {
  std::vector<Edge> batch;
  int attempts = 0;
  while (static_cast<int>(batch.size()) < count && attempts++ < count * 50) {
    const auto x = static_cast<NodeId>(rng.uniform_index(static_cast<std::uint64_t>(nx / 3)));
    const auto y = static_cast<NodeId>(rng.uniform_index(static_cast<std::uint64_t>(nx / 3)));
    const NodeId u = y * nx + x;
    NodeId v = u;
    for (int h = 0; h < 2; ++h) {
      const auto nbrs = g.neighbors(v);
      if (nbrs.empty()) break;
      v = nbrs[rng.uniform_index(nbrs.size())].to;
    }
    if (u == v || g.has_edge(u, v)) continue;
    bool dup = false;
    for (const Edge& e : batch) {
      if ((e.u == std::min(u, v)) && (e.v == std::max(u, v))) dup = true;
    }
    if (dup) continue;
    batch.push_back(Edge{std::min(u, v), std::max(u, v), rng.uniform(0.8, 1.6)});
  }
  return batch;
}

int run_fold() {
  std::puts("== fold: kappa damage vs fold_weight_fraction on local streams ==");
  const NodeId nx = 36;
  for (const double frac : {1.0, 0.5, 0.25, 0.0}) {
    Rng rng(11);
    Graph g = make_triangulated_grid(nx, nx, rng);
    GrassOptions gopts;
    gopts.target_offtree_density = 0.10;
    Graph h0 = grass_sparsify(g, gopts).sparsifier;
    const double kappa0 = condition_number(g, h0);

    Ingrass::Options iopts;
    iopts.target_condition = kappa0;
    iopts.fold_weight_fraction = frac;
    Ingrass ing{Graph(h0), iopts};
    for (int pass = 1; pass <= 6; ++pass) {
      auto batch = refine_near_corner(g, nx, rng, 60);
      for (const Edge& e : batch) g.add_or_merge_edge(e.u, e.v, e.w);
      ing.insert_edges(batch);
    }
    const ConditionNumberResult r =
        relative_condition_number(g, ing.sparsifier());
    std::printf("fold=%.2f kappa0=%.1f -> kappa=%.1f (lmax=%.1f lmin=%.3f) edges=%lld\n",
                frac, kappa0, r.kappa, r.lambda_max, r.lambda_min,
                static_cast<long long>(ing.sparsifier().num_edges()));
  }
  return 0;
}

// --- stream-sweep: workload regime for Table II's separation -------------

int run_stream_sweep() {
  std::puts("== stream-sweep: stream parameters vs Table II separation ==");
  Rng grng(1);
  const Graph g0 = make_triangulated_grid(50, 50, grng);
  GrassOptions gopts;
  gopts.target_offtree_density = 0.10;
  const Graph h0 = grass_sparsify(g0, gopts).sparsifier;
  const double k0 = condition_number(g0, h0);
  std::printf("k0 = %.1f\n", k0);

  struct P {
    double loc;
    int hops;
    double factor;
  };
  const P params[] = {
      {0.95, 2, 8.0}, {0.95, 3, 4.0}, {0.95, 4, 2.0}, {1.0, 3, 1.0},
      {1.0, 4, 1.0},  {0.9, 4, 2.0},  {0.97, 4, 4.0},
  };
  for (const P& p : params) {
    EdgeStreamOptions sopts;
    sopts.locality_fraction = p.loc;
    sopts.local_hops = p.hops;
    sopts.global_weight_factor = p.factor;
    const auto batches = make_edge_stream(g0, sopts);
    Graph g = g0;
    apply_batches(g, batches);
    const double stale = condition_number(g, h0);

    Ingrass::Options iopts;
    iopts.target_condition = k0;
    Ingrass ing{Graph(h0), iopts};
    for (const auto& b : batches) ing.insert_edges(b);
    const double k_ing = condition_number(g, ing.sparsifier());

    const Graph hr = random_baseline(g0, h0, batches, k0);
    std::printf(
        "loc=%.2f hops=%d f=%.0f | stale/k0=%5.1f | inGRASS k=%6.1f D=%.3f | "
        "random D=%.3f\n",
        p.loc, p.hops, p.factor, stale / k0, k_ing,
        offtree_density(ing.sparsifier()), offtree_density(hr));
  }
  return 0;
}

// --- filtering: cluster distributions + filtering-level sweep ------------

int run_filtering() {
  std::puts("== filtering: cluster-size distributions + level sweep ==");
  const std::string name = env_string("CASE", "G2_circuit");
  const double scale = env_double("SCALE", 0.25);
  Rng rng(0xC0FFEE);
  const Graph g0 = make_paper_testcase(name, scale, rng);
  std::printf("case=%s N=%d E=%lld\n", name.c_str(), g0.num_nodes(),
              static_cast<long long>(g0.num_edges()));

  GrassOptions gopts;
  gopts.target_offtree_density = 0.10;
  const Graph h0 = grass_sparsify(g0, gopts).sparsifier;
  const double k0 = condition_number(g0, h0);
  std::printf("k0 = %.1f  cap = %.1f\n", k0, k0 / 2.0);

  Ingrass::Options iopts;
  iopts.target_condition = k0;
  Ingrass ing(Graph(h0), iopts);
  const auto& emb = ing.embedding();
  for (int l = 0; l < emb.num_levels(); ++l) {
    // Size distribution: max, median, #clusters.
    std::vector<NodeId> sizes;
    for (NodeId c = 0; c < emb.num_clusters(l); ++c) sizes.push_back(emb.cluster_size(l, c));
    std::sort(sizes.begin(), sizes.end());
    const NodeId med = sizes[sizes.size() / 2];
    const NodeId p95 = sizes[static_cast<std::size_t>(0.95 * (sizes.size() - 1))];
    std::printf("level %d: clusters=%u max=%u p95=%u med=%u%s\n", l, emb.num_clusters(l),
                emb.max_cluster_size(l), p95, med,
                l == ing.filtering_level() ? "   <= filtering level" : "");
  }

  const auto batches = make_edge_stream(g0, {});
  Graph g = g0;
  apply_batches(g, batches);

  // Sweep the filtering level: at each level run the whole stream and
  // report density + achieved kappa against the target.
  for (int level = 0; level < emb.num_levels(); ++level) {
    Ingrass::Options lopts = iopts;
    lopts.filtering_level_override = level;
    Ingrass run(Graph(h0), lopts);
    EdgeId ins = 0, mrg = 0, red = 0;
    for (const auto& b : batches) {
      const auto st = run.insert_edges(b);
      ins += st.inserted;
      mrg += st.merged;
      red += st.redistributed;
    }
    std::printf(
        "level %2d: density %.3f  kappa %7.1f  (ins=%lld mrg=%lld red=%lld)%s\n", level,
        offtree_density(run.sparsifier()), condition_number(g, run.sparsifier()),
        static_cast<long long>(ins), static_cast<long long>(mrg),
        static_cast<long long>(red),
        level == ing.filtering_level() ? "   <= auto choice" : "");
  }
  return 0;
}

// --- resistance: multilevel bound calibration ----------------------------

int run_resistance() {
  std::puts("== resistance: multilevel bound vs exact effective resistance ==");
  const std::string name = env_string("CASE", "G2_circuit");
  Rng rng(0xC0FFEE);
  const Graph g0 = make_paper_testcase(name, env_double("SCALE", 0.25), rng);
  GrassOptions gopts;
  gopts.target_offtree_density = 0.10;
  const Graph h0 = grass_sparsify(g0, gopts).sparsifier;
  const double k0 = condition_number(g0, h0);

  Ingrass::Options iopts;
  iopts.target_condition = k0;
  Ingrass ing(Graph(h0), iopts);
  const EffectiveResistanceOracle oracle(h0);

  Rng qrng(7);
  auto random_node = [&] {
    return static_cast<NodeId>(qrng.uniform_index(g0.num_nodes()));
  };
  std::puts("kind      exact      bound     bound/exact   flat     flat/exact");
  for (int kind = 0; kind < 2; ++kind) {
    double sum_ratio_b = 0.0, sum_ratio_f = 0.0;
    int cnt = 0;
    for (int i = 0; i < 30; ++i) {
      NodeId u = random_node(), v = u;
      if (kind == 0) {
        for (int h = 0; h < 2 && !g0.neighbors(v).empty(); ++h) {
          const auto nb = g0.neighbors(v);
          v = nb[qrng.uniform_index(nb.size())].to;
        }
      } else {
        v = random_node();
      }
      if (u == v) continue;
      const double exact = oracle.resistance(u, v);
      const double bound = ing.embedding().resistance_bound(u, v);
      const double flat = ing.embedding().base_embedding().estimate(u, v);
      if (exact <= 0) continue;
      sum_ratio_b += bound / exact;
      sum_ratio_f += flat / exact;
      ++cnt;
      if (i < 8) {
        std::printf("%s  %9.4f  %9.4f  %8.2f  %9.4f  %8.2f\n",
                    kind == 0 ? "local " : "global", exact, bound, bound / exact,
                    flat, flat / exact);
      }
    }
    std::printf("%s mean ratios over %d pairs: bound/exact=%.2f flat/exact=%.2f\n\n",
                kind == 0 ? "local " : "global", cnt, sum_ratio_b / cnt,
                sum_ratio_f / cnt);
  }
  return 0;
}

// --- dispatch ------------------------------------------------------------

struct Subcommand {
  const char* name;
  const char* help;
  int (*run)();
};

constexpr Subcommand kSubcommands[] = {
    {"locality", "kappa/density regime vs stream locality", run_locality},
    {"lanczos", "Lanczos ghost eigenvalues + embedding rank correlation", run_lanczos},
    {"fold", "which update mechanism damages kappa on local streams", run_fold},
    {"stream-sweep", "stream-parameter sweep for Table II's separation", run_stream_sweep},
    {"filtering", "cluster-size distributions + filtering-level sweep", run_filtering},
    {"resistance", "multilevel resistance bound vs exact effective resistance", run_resistance},
};

int usage() {
  std::fprintf(stderr, "usage: ingrass_diagnose <subcommand>\n\nsubcommands:\n");
  for (const Subcommand& sub : kSubcommands) {
    std::fprintf(stderr, "  %-13s %s\n", sub.name, sub.help);
  }
  std::fprintf(stderr, "  %-13s run every diagnostic in sequence\n", "all");
  std::fprintf(stderr,
               "\n`filtering` and `resistance` honor CASE (default G2_circuit) "
               "and SCALE (default 0.25) from the environment.\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) return usage();
  if (std::strcmp(argv[1], "all") == 0) {
    for (const Subcommand& sub : kSubcommands) {
      if (const int rc = sub.run(); rc != 0) return rc;
      std::puts("");
    }
    return 0;
  }
  for (const Subcommand& sub : kSubcommands) {
    if (std::strcmp(argv[1], sub.name) == 0) return sub.run();
  }
  return usage();
}
