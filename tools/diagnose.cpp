// Scratch diagnostic (not part of the shipped library): explores the
// kappa/density regime of the incremental protocol at laptop scales.
#include <cstdio>

#include "core/edge_stream.hpp"
#include "core/ingrass.hpp"
#include "graph/generators.hpp"
#include "sparsify/density.hpp"
#include "sparsify/grass.hpp"
#include "sparsify/random_update.hpp"
#include "spectral/condition_number.hpp"

using namespace ingrass;

int main() {
  const NodeId side = 40;
  for (const double locality : {0.5, 0.8, 0.9, 0.95}) {
    Rng rng(1);
    Graph g0 = make_triangulated_grid(side, side, rng);
    GrassOptions gopts;
    gopts.target_offtree_density = 0.10;
    const Graph h0 = grass_sparsify(g0, gopts).sparsifier;
    const double k0 = condition_number(g0, h0);

    EdgeStreamOptions sopts;
    sopts.total_per_node = 0.24;
    sopts.locality_fraction = locality;
    const auto batches = make_edge_stream(g0, sopts);
    Graph g = g0;
    for (const auto& b : batches) {
      for (const Edge& e : b) g.add_or_merge_edge(e.u, e.v, e.w);
    }
    const double k_stale = condition_number(g, h0);

    Ingrass::Options iopts;
    iopts.target_condition = k0;
    iopts.fold_weight_fraction = 0.0;
    Ingrass ing{Graph(h0), iopts};
    for (const auto& b : batches) ing.insert_edges(b);
    const double k_ing = condition_number(g, ing.sparsifier());

    // Random baseline.
    Graph hr = h0;
    {
      Graph gr = g0;
      std::uint64_t seed = 99;
      for (const auto& b : batches) {
        for (const Edge& e : b) gr.add_or_merge_edge(e.u, e.v, e.w);
        RandomUpdateOptions ropts;
        ropts.target_condition = k0;
        ropts.seed = seed++;
        random_update(gr, hr, b, ropts);
      }
    }
    std::printf(
        "loc=%.2f | k0=%6.1f stale=%6.1f | inGRASS k=%6.1f D=%.3f lvl=%d | "
        "random D=%.3f | d_all=%.3f\n",
        locality, k0, k_stale, k_ing, offtree_density(ing.sparsifier()),
        ing.filtering_level(), offtree_density(hr),
        offtree_density_with(h0, static_cast<EdgeId>(0.24 * side * side)));
  }
  return 0;
}
