// Scratch diagnostic 2: Lanczos ghost eigenvalue + embedding accuracy.
#include <cstdio>

#include "graph/generators.hpp"
#include "linalg/lanczos.hpp"
#include "spectral/effective_resistance.hpp"
#include "spectral/laplacian.hpp"
#include "spectral/resistance_embedding.hpp"
#include "util/stats.hpp"

using namespace ingrass;

int main() {
  {
    Rng rng(2);
    const Graph g = make_grid2d(8, 8, rng);
    const CsrAdjacency csr = build_csr(g);
    for (const int iters : {20, 40, 60, 63}) {
      LanczosOptions opts;
      opts.max_iters = iters;
      opts.deflate_ones = true;
      const auto s = lanczos_extreme_eigenvalues(laplacian_operator(csr), 64, opts);
      std::printf("lanczos iters=%2d -> lmin=%.3e lmax=%.4f (used %d)\n", iters,
                  s.lambda_min, s.lambda_max, s.iterations);
    }
  }
  // Embedding rank correlation vs options.
  Rng rng(3);
  const Graph g = make_triangulated_grid(10, 10, rng);
  const EffectiveResistanceOracle oracle(g);
  std::vector<std::pair<NodeId, NodeId>> pairs;
  Rng prng(17);
  for (int i = 0; i < 60; ++i) {
    const auto u = static_cast<NodeId>(prng.uniform_index(100));
    const auto v = static_cast<NodeId>(prng.uniform_index(100));
    if (u != v) pairs.emplace_back(u, v);
  }
  for (const int order : {12, 24, 48}) {
    for (const int smooth : {0, 2, 6, 12}) {
      ResistanceEmbedding::Options opts;
      opts.order = order;
      opts.smoothing_steps = smooth;
      const ResistanceEmbedding emb = ResistanceEmbedding::build(g, opts);
      int concordant = 0, total = 0;
      RunningStats err;
      for (std::size_t i = 0; i + 1 < pairs.size(); i += 2) {
        const auto [a, b] = pairs[i];
        const auto [c, d] = pairs[i + 1];
        const double ed = oracle.resistance(a, b) - oracle.resistance(c, d);
        const double dd = emb.estimate(a, b) - emb.estimate(c, d);
        if (std::abs(ed) < 1e-6) continue;
        ++total;
        if ((ed > 0) == (dd > 0)) ++concordant;
      }
      for (const auto& [u, v] : pairs) {
        err.add(rel_err(emb.estimate(u, v), oracle.resistance(u, v)));
      }
      std::printf("order=%2d smooth=%2d -> concord=%.2f meanrel=%.3f\n", order,
                  smooth, static_cast<double>(concordant) / total, err.mean());
    }
  }
  return 0;
}
