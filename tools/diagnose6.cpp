// Scratch diagnostic 6: calibration of the multilevel resistance bound and
// the flat Krylov estimate against the exact effective resistance of H(0),
// over local (2-hop) and global (random-pair) queries.
#include <cstdio>

#include "core/ingrass.hpp"
#include "graph/generators.hpp"
#include "sparsify/grass.hpp"
#include "spectral/condition_number.hpp"
#include "spectral/effective_resistance.hpp"
#include "util/env.hpp"

using namespace ingrass;

int main() {
  const std::string name = env_string("CASE", "G2_circuit");
  Rng rng(0xC0FFEE);
  const Graph g0 = make_paper_testcase(name, env_double("SCALE", 0.25), rng);
  GrassOptions gopts;
  gopts.target_offtree_density = 0.10;
  const Graph h0 = grass_sparsify(g0, gopts).sparsifier;
  const double k0 = condition_number(g0, h0);

  Ingrass::Options iopts;
  iopts.target_condition = k0;
  Ingrass ing(Graph(h0), iopts);
  const EffectiveResistanceOracle oracle(h0);

  Rng qrng(7);
  auto random_node = [&] {
    return static_cast<NodeId>(qrng.uniform_index(g0.num_nodes()));
  };
  std::puts("kind      exact      bound     bound/exact   flat     flat/exact");
  for (int kind = 0; kind < 2; ++kind) {
    double sum_ratio_b = 0.0, sum_ratio_f = 0.0;
    int cnt = 0;
    for (int i = 0; i < 30; ++i) {
      NodeId u = random_node(), v = u;
      if (kind == 0) {
        for (int h = 0; h < 2 && !g0.neighbors(v).empty(); ++h) {
          const auto nb = g0.neighbors(v);
          v = nb[qrng.uniform_index(nb.size())].to;
        }
      } else {
        v = random_node();
      }
      if (u == v) continue;
      const double exact = oracle.resistance(u, v);
      const double bound = ing.embedding().resistance_bound(u, v);
      const double flat = ing.embedding().base_embedding().estimate(u, v);
      if (exact <= 0) continue;
      sum_ratio_b += bound / exact;
      sum_ratio_f += flat / exact;
      ++cnt;
      if (i < 8) {
        std::printf("%s  %9.4f  %9.4f  %8.2f  %9.4f  %8.2f\n",
                    kind == 0 ? "local " : "global", exact, bound, bound / exact,
                    flat, flat / exact);
      }
    }
    std::printf("%s mean ratios over %d pairs: bound/exact=%.2f flat/exact=%.2f\n\n",
                kind == 0 ? "local " : "global", cnt, sum_ratio_b / cnt,
                sum_ratio_f / cnt);
  }
  return 0;
}
