// stream_replay — replay a recorded edge-insertion stream through inGRASS
// against a Matrix Market base graph, reporting per-batch update outcomes
// and end-of-stream quality (what Table II measures, but on user data).
//
// Subcommands:
//   replay <g.mtx> <stream.txt> [options]
//       Build H(0) with GRASS at --density, run the inGRASS setup once,
//       then apply every batch of the stream. Prints per-batch counters
//       and final density / condition number against the evolved graph.
//   generate <g.mtx> <stream.txt> [options]
//       Synthesize a Table-II-style insertion stream for the graph and
//       write it in the stream file format (see graph/stream_io.hpp) —
//       a convenient way to produce demo inputs for `replay`.
//
// Options:
//   --density <frac>     H(0) off-tree density        (default 0.10)
//   --target <C>         kappa target for filtering   (default: measured kappa0)
//   --iterations <n>     generate: number of batches  (default 10)
//   --per-node <frac>    generate: total edges / N    (default 0.24)
//   --seed <s>           generate: workload seed      (default 2024)
//   --quantile <q>       filtering-level size quantile (default 0.5)
//   --no-kappa           replay: skip condition-number measurements
//
// Exit status 0 on success, 1 on usage errors, 2 on runtime failures.

#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "core/edge_stream.hpp"
#include "core/ingrass.hpp"
#include "graph/mtx_io.hpp"
#include "graph/stream_io.hpp"
#include "sparsify/density.hpp"
#include "sparsify/grass.hpp"
#include "spectral/condition_number.hpp"
#include "util/timer.hpp"

using namespace ingrass;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  stream_replay replay   <g.mtx> <stream.txt> [--density f] "
               "[--target C] [--quantile q] [--no-kappa]\n"
               "  stream_replay generate <g.mtx> <stream.txt> [--iterations n] "
               "[--per-node f] [--seed s]\n");
  return 1;
}

struct Args {
  std::string command;
  std::string graph_path;
  std::string stream_path;
  double density = 0.10;
  std::optional<double> target;
  int iterations = 10;
  double per_node = 0.24;
  std::uint64_t seed = 2024;
  double quantile = 0.5;
  bool no_kappa = false;
};

std::optional<Args> parse(int argc, char** argv) {
  if (argc < 4) return std::nullopt;
  Args a;
  a.command = argv[1];
  a.graph_path = argv[2];
  a.stream_path = argv[3];
  for (int i = 4; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> std::optional<std::string> {
      if (i + 1 >= argc) return std::nullopt;
      return std::string(argv[++i]);
    };
    if (flag == "--no-kappa") {
      a.no_kappa = true;
    } else if (flag == "--density") {
      const auto v = value();
      if (!v) return std::nullopt;
      a.density = std::stod(*v);
    } else if (flag == "--target") {
      const auto v = value();
      if (!v) return std::nullopt;
      a.target = std::stod(*v);
    } else if (flag == "--iterations") {
      const auto v = value();
      if (!v) return std::nullopt;
      a.iterations = std::stoi(*v);
    } else if (flag == "--per-node") {
      const auto v = value();
      if (!v) return std::nullopt;
      a.per_node = std::stod(*v);
    } else if (flag == "--seed") {
      const auto v = value();
      if (!v) return std::nullopt;
      a.seed = static_cast<std::uint64_t>(std::stoull(*v));
    } else if (flag == "--quantile") {
      const auto v = value();
      if (!v) return std::nullopt;
      a.quantile = std::stod(*v);
    } else {
      std::fprintf(stderr, "unknown option: %s\n", flag.c_str());
      return std::nullopt;
    }
  }
  return a;
}

int run_generate(const Args& a) {
  const Graph g = read_mtx_file(a.graph_path);
  EdgeStreamOptions opts;
  opts.iterations = a.iterations;
  opts.total_per_node = a.per_node;
  opts.seed = a.seed;
  const auto batches = make_edge_stream(g, opts);
  save_edge_stream(a.stream_path, batches);
  EdgeId total = 0;
  for (const auto& b : batches) total += static_cast<EdgeId>(b.size());
  std::printf("wrote %lld edges in %zu batches to %s\n",
              static_cast<long long>(total), batches.size(), a.stream_path.c_str());
  return 0;
}

int run_replay(const Args& a) {
  const Graph g0 = read_mtx_file(a.graph_path);
  std::printf("graph: %d nodes, %lld edges\n", g0.num_nodes(),
              static_cast<long long>(g0.num_edges()));
  const auto batches = load_edge_stream(a.stream_path, g0.num_nodes());

  GrassOptions gopts;
  gopts.target_offtree_density = a.density;
  const Graph h0 = grass_sparsify(g0, gopts).sparsifier;
  double kappa0 = 0.0;
  if (!a.no_kappa) {
    kappa0 = condition_number(g0, h0);
    std::printf("H(0): density %.1f%%, kappa0 = %.1f\n",
                100.0 * offtree_density(h0), kappa0);
  }

  Ingrass::Options iopts;
  iopts.target_condition = a.target.value_or(a.no_kappa ? 100.0 : kappa0);
  iopts.level_size_quantile = a.quantile;
  Ingrass ing(Graph(h0), iopts);
  std::printf("setup: %.3f s, %d levels, filtering level %d\n\n",
              ing.setup_seconds(), ing.num_levels(), ing.filtering_level());

  Graph g = g0;
  AccumTimer updates;
  std::printf("%-7s %-7s %-9s %-8s %-7s %-11s %-9s\n", "batch", "edges", "inserted",
              "merged", "redist", "reinforced", "ms");
  for (std::size_t b = 0; b < batches.size(); ++b) {
    for (const Edge& e : batches[b]) g.add_or_merge_edge(e.u, e.v, e.w);
    updates.start();
    const auto stats = ing.insert_edges(batches[b]);
    updates.stop();
    std::printf("%-7zu %-7zu %-9lld %-8lld %-7lld %-11lld %-9.3f\n", b,
                batches[b].size(), static_cast<long long>(stats.inserted),
                static_cast<long long>(stats.merged),
                static_cast<long long>(stats.redistributed),
                static_cast<long long>(stats.reinforced), stats.seconds * 1e3);
  }

  std::printf("\ntotal update time: %.4f s (setup %.3f s)\n", updates.seconds(),
              ing.setup_seconds());
  std::printf("final sparsifier density: %.1f%%\n",
              100.0 * offtree_density(ing.sparsifier()));
  if (!a.no_kappa) {
    std::printf("kappa(G_final, H_final) = %.1f  (target %.1f)\n",
                condition_number(g, ing.sparsifier()), iopts.target_condition);
    std::printf("kappa(G_final, H(0))    = %.1f  (if you never updated)\n",
                condition_number(g, h0));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = parse(argc, argv);
  if (!args) return usage();
  try {
    if (args->command == "replay") return run_replay(*args);
    if (args->command == "generate") return run_generate(*args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  return usage();
}
