// stream_replay — replay a recorded update stream (insertions and, beyond
// the paper, removals) through a SparsifierSession against a Matrix Market
// base graph, reporting per-batch outcomes, staleness, rebuilds, and
// end-of-stream quality (what Table II measures, but on user data).
//
// Subcommands:
//   replay <g.mtx> <stream.txt> [options]
//       Build H(0) with GRASS at --density, run the inGRASS setup once,
//       then drive every batch of the stream through a SparsifierSession
//       (synchronous rebuilds, so runs are deterministic). Prints
//       per-batch counters and final density / condition number against
//       the evolved graph.
//   generate <g.mtx> <stream.txt> [options]
//       Synthesize a Table-II-style insertion stream for the graph —
//       optionally mixed with removal records of earlier-inserted edges
//       (--remove-frac) — and write it in the stream file format (see
//       graph/stream_io.hpp).
//
// Options (the session bundle --density/--target/--grass-target/
// --staleness is the shared serve parser — serve::consume_session_flag —
// so defaults and error behavior match `ingrass_serve` exactly):
//   --density <frac>     H(0) off-tree density          (default 0.10)
//   --target <C>         kappa budget for the session   (default: measured kappa0)
//   --staleness <f>      staleness fraction tripping a rebuild (default 0.75)
//   --rebuild-at <f>     legacy alias for --staleness
//   --grass-target <C>   rebuilds re-sparsify to kappa <= C instead of to
//                        the --density target (budget-guaranteed mode)
//   --no-rebuild         replay: never re-sparsify (paper-faithful mode)
//   --iterations <n>     generate: number of batches    (default 10)
//   --per-node <frac>    generate: total edges / N      (default 0.24)
//   --remove-frac <f>    generate: removals per batch as a fraction of its
//                        inserts, drawn from earlier-inserted edges (default 0)
//   --seed <s>           generate: workload seed        (default 2024)
//   --quantile <q>       filtering-level size quantile  (default 0.5)
//   --shards <K>         replay: drive the batches through a K-shard
//                        ShardedSession (greedy partition) instead of one
//                        session; per-batch rows aggregate the shards
//   --no-kappa           replay: skip condition-number measurements
//
// Exit status 0 on success, 1 on usage errors, 2 on runtime failures.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "core/edge_stream.hpp"
#include "graph/mtx_io.hpp"
#include "graph/stream_io.hpp"
#include "serve/protocol.hpp"
#include "serve/session.hpp"
#include "serve/shard_dispatcher.hpp"
#include "sparsify/density.hpp"
#include "sparsify/grass.hpp"
#include "spectral/condition_number.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

using namespace ingrass;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  stream_replay replay   <g.mtx> <stream.txt> [--density f] "
               "[--target C] [--quantile q] [--staleness f] [--grass-target C] "
               "[--shards K] [--no-rebuild] [--no-kappa]\n"
               "  stream_replay generate <g.mtx> <stream.txt> [--iterations n] "
               "[--per-node f] [--remove-frac f] [--seed s]\n");
  return 1;
}

struct Args {
  std::string command;
  std::string graph_path;
  std::string stream_path;
  /// The shared session bundle (--density/--target/--grass-target/
  /// --staleness/--no-rebuild), parsed by serve::consume_session_flag so
  /// the defaults cannot drift from the serve protocol.
  serve::SessionSpec spec;
  int iterations = 10;
  double per_node = 0.24;
  double remove_frac = 0.0;
  std::uint64_t seed = 2024;
  double quantile = 0.5;
  int shards = 1;
  bool no_kappa = false;
};

std::optional<Args> parse(int argc, char** argv) {
  if (argc < 4) return std::nullopt;
  Args a;
  a.command = argv[1];
  a.graph_path = argv[2];
  a.stream_path = argv[3];
  const std::vector<std::string> args(argv + 4, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    // The shared session flags first; tool-specific flags below.
    if (serve::consume_session_flag(args, i, a.spec)) continue;
    const std::string& flag = args[i];
    auto value = [&]() -> std::optional<std::string> {
      if (i + 1 >= args.size()) return std::nullopt;
      return args[++i];
    };
    if (flag == "--no-kappa") {
      a.no_kappa = true;
    } else if (flag == "--rebuild-at") {
      // Legacy alias for --staleness.
      const auto v = value();
      if (!v) return std::nullopt;
      a.spec.staleness = std::stod(*v);
    } else if (flag == "--iterations") {
      const auto v = value();
      if (!v) return std::nullopt;
      a.iterations = std::stoi(*v);
    } else if (flag == "--per-node") {
      const auto v = value();
      if (!v) return std::nullopt;
      a.per_node = std::stod(*v);
    } else if (flag == "--remove-frac") {
      const auto v = value();
      if (!v) return std::nullopt;
      a.remove_frac = std::stod(*v);
      if (a.remove_frac < 0.0) {
        std::fprintf(stderr, "--remove-frac must be non-negative\n");
        return std::nullopt;
      }
    } else if (flag == "--seed") {
      const auto v = value();
      if (!v) return std::nullopt;
      a.seed = static_cast<std::uint64_t>(std::stoull(*v));
    } else if (flag == "--quantile") {
      const auto v = value();
      if (!v) return std::nullopt;
      a.quantile = std::stod(*v);
    } else if (flag == "--shards") {
      const auto v = value();
      if (!v) return std::nullopt;
      a.shards = std::stoi(*v);
      if (a.shards < 1) {
        std::fprintf(stderr, "--shards must be >= 1\n");
        return std::nullopt;
      }
    } else {
      std::fprintf(stderr, "unknown option: %s\n", flag.c_str());
      return std::nullopt;
    }
  }
  return a;
}

int run_generate(const Args& a) {
  const Graph g = read_mtx_file(a.graph_path);
  EdgeStreamOptions opts;
  opts.iterations = a.iterations;
  opts.total_per_node = a.per_node;
  opts.seed = a.seed;
  const auto inserts = make_edge_stream(g, opts);

  std::vector<UpdateBatch> batches(inserts.size());
  for (std::size_t b = 0; b < inserts.size(); ++b) batches[b].inserts = inserts[b];

  // Removal records: each batch (after the first) removes a fraction of
  // the edges inserted in *earlier* batches — the base graph stays intact,
  // so connectivity is never at risk, while the sparsifier accumulates
  // ghost edges that exercise the staleness path.
  EdgeId total_removals = 0;
  if (a.remove_frac > 0.0) {
    Rng rng(a.seed ^ 0x5eedfeedULL);
    std::vector<std::pair<NodeId, NodeId>> pool;  // inserted, not yet removed
    for (std::size_t b = 0; b < batches.size(); ++b) {
      auto want = static_cast<std::size_t>(a.remove_frac *
                                           static_cast<double>(batches[b].inserts.size()));
      want = std::min(want, pool.size());
      for (std::size_t k = 0; k < want; ++k) {
        const auto pick = static_cast<std::size_t>(rng.uniform_index(pool.size()));
        batches[b].removals.push_back(pool[pick]);
        pool[pick] = pool.back();
        pool.pop_back();
      }
      total_removals += static_cast<EdgeId>(want);
      for (const Edge& e : batches[b].inserts) pool.emplace_back(e.u, e.v);
    }
  }

  save_update_stream(a.stream_path, batches);
  EdgeId total = 0;
  for (const auto& b : batches) total += static_cast<EdgeId>(b.inserts.size());
  std::printf("wrote %lld inserts and %lld removals in %zu batches to %s\n",
              static_cast<long long>(total), static_cast<long long>(total_removals),
              batches.size(), a.stream_path.c_str());
  return 0;
}

/// Replay through the K-shard dispatcher: same per-batch reporting, but
/// records route to their owning shards and cross-shard edges go through
/// the boundary-coupling layer. Rebuilds stay synchronous per shard, so
/// runs are deterministic like the unsharded replay.
int run_replay_sharded(const Args& a) {
  const Graph g0 = read_mtx_file(a.graph_path);
  std::printf("graph: %d nodes, %lld edges\n", g0.num_nodes(),
              static_cast<long long>(g0.num_edges()));
  const auto batches = load_update_stream(a.stream_path, g0.num_nodes());

  ShardedOptions sopts = a.spec.sharded_options(PartitionStrategy::kGreedy);
  sopts.session.engine.level_size_quantile = a.quantile;
  sopts.session.background_rebuild = false;  // deterministic replays
  ShardedSession session(Graph(g0), a.shards, sopts);
  {
    const ShardedMetrics m = session.metrics();
    std::printf(
        "setup: %d shards, %lld cut edges (boundary weight %.3g), kappa budget "
        "%.1f per shard, rebuild at %.0f%%\n\n",
        m.shards, static_cast<long long>(m.boundary_edges), m.boundary_weight,
        sopts.session.engine.target_condition, 100.0 * a.spec.staleness);
  }

  AccumTimer updates;
  std::printf("%-7s %-7s %-9s %-8s %-7s %-11s %-8s %-7s %s\n", "batch", "edges",
              "inserted", "merged", "redist", "reinforced", "removed", "stale%",
              "");
  for (std::size_t b = 0; b < batches.size(); ++b) {
    updates.start();
    const ApplyResult r = session.apply(batches[b]);
    updates.stop();
    std::printf("%-7zu %-7zu %-9lld %-8lld %-7lld %-11lld %-8lld %-7.1f %s\n", b,
                batches[b].size(), static_cast<long long>(r.stats.inserted),
                static_cast<long long>(r.stats.merged),
                static_cast<long long>(r.stats.redistributed),
                static_cast<long long>(r.stats.reinforced),
                static_cast<long long>(r.removed), 100.0 * r.staleness,
                r.rebuild_triggered ? "REBUILD" : "");
  }

  const ShardedMetrics m = session.metrics();
  std::printf("\ntotal apply time: %.4f s (%llu rebuilds, %llu rebuild failures, "
              "%llu coupling updates)\n",
              updates.seconds(),
              static_cast<unsigned long long>(m.counters.rebuilds),
              static_cast<unsigned long long>(m.counters.rebuild_failures),
              static_cast<unsigned long long>(m.coupling_updates));
  const Graph h_final = session.sparsifier();
  std::printf("final stitched sparsifier density: %.1f%%\n",
              100.0 * offtree_density(h_final));
  if (!a.no_kappa) {
    std::printf("kappa(G_final, H_final) = %.1f  (per-shard budget %.1f)\n",
                condition_number(session.graph(), h_final),
                sopts.session.engine.target_condition);
  }
  return 0;
}

int run_replay(const Args& a) {
  if (a.shards > 1) return run_replay_sharded(a);
  const Graph g0 = read_mtx_file(a.graph_path);
  std::printf("graph: %d nodes, %lld edges\n", g0.num_nodes(),
              static_cast<long long>(g0.num_edges()));
  const auto batches = load_update_stream(a.stream_path, g0.num_nodes());

  GrassOptions gopts;
  gopts.target_offtree_density = a.spec.density;
  Graph h0 = grass_sparsify(g0, gopts).sparsifier;
  double kappa0 = 0.0;
  if (!a.no_kappa) {
    kappa0 = condition_number(g0, h0);
    std::printf("H(0): density %.1f%%, kappa0 = %.1f\n",
                100.0 * offtree_density(h0), kappa0);
  }

  SessionOptions sopts = a.spec.session_options();
  // An unset --target falls back to the measured kappa0 here (the serve
  // default of 100 only applies when kappa is not being measured).
  sopts.engine.target_condition = a.spec.target.value_or(a.no_kappa ? 100.0 : kappa0);
  sopts.engine.level_size_quantile = a.quantile;
  sopts.background_rebuild = false;  // deterministic replays
  SparsifierSession session(g0, Graph(h0), sopts);
  std::printf("setup: %d nodes sparsifier, kappa budget %.1f, rebuild at %.0f%%\n\n",
              g0.num_nodes(), sopts.engine.target_condition, 100.0 * a.spec.staleness);

  AccumTimer updates;
  std::printf("%-7s %-7s %-9s %-8s %-7s %-11s %-8s %-7s %-9s %s\n", "batch", "edges",
              "inserted", "merged", "redist", "reinforced", "removed", "stale%",
              "ms", "");
  for (std::size_t b = 0; b < batches.size(); ++b) {
    updates.start();
    const ApplyResult r = session.apply(batches[b]);
    updates.stop();
    std::printf("%-7zu %-7zu %-9lld %-8lld %-7lld %-11lld %-8lld %-7.1f %-9.3f %s\n", b,
                batches[b].size(), static_cast<long long>(r.stats.inserted),
                static_cast<long long>(r.stats.merged),
                static_cast<long long>(r.stats.redistributed),
                static_cast<long long>(r.stats.reinforced),
                static_cast<long long>(r.removed), 100.0 * r.staleness,
                r.stats.seconds * 1e3, r.rebuild_triggered ? "REBUILD" : "");
  }

  const SessionMetrics m = session.metrics();
  std::printf("\ntotal apply time: %.4f s (%llu rebuilds, %llu rebuild failures)\n",
              updates.seconds(),
              static_cast<unsigned long long>(m.counters.rebuilds),
              static_cast<unsigned long long>(m.counters.rebuild_failures));
  const Graph h_final = session.sparsifier();
  std::printf("final sparsifier density: %.1f%%\n", 100.0 * offtree_density(h_final));
  if (!a.no_kappa) {
    const Graph g_final = session.graph();
    std::printf("kappa(G_final, H_final) = %.1f  (budget %.1f)\n",
                condition_number(g_final, h_final), sopts.engine.target_condition);
    std::printf("kappa(G_final, H(0))    = %.1f  (if you never updated)\n",
                condition_number(g_final, h0));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // parse() uses std::stod/stoi on flag values; a malformed value must be
  // a usage error, not an uncaught abort.
  std::optional<Args> args;
  try {
    args = parse(argc, argv);
  } catch (const std::exception&) {
    return usage();
  }
  if (!args) return usage();
  try {
    if (args->command == "replay") return run_replay(*args);
    if (args->command == "generate") return run_generate(*args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  return usage();
}
