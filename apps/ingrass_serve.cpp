// ingrass_serve — the serving front-end over serve::Engine: long-lived
// multi-tenant sparsifier sessions behind the typed request/response
// protocol (serve/protocol.hpp) and a pluggable transport
// (serve/transport.hpp). This file is flag parsing and wiring only; the
// command grammar, the binary frame layout, the tenant addressing, and a
// worked transcript live in docs/serve_protocol.md.
//
// Modes:
//
//   ingrass_serve
//       Serve the text line protocol on stdin/stdout (byte-compatible
//       with the original single-session server; unnamed commands hit
//       the "default" tenant, `@name` prefixes or `open --name` address
//       others).
//   ingrass_serve --binary
//       Same loop, but stdin/stdout carry length-prefixed binary frames.
//   ingrass_serve --listen <port> [--port-file <path>] [--max-connections <N>]
//                 [--event-loop]
//       TCP server: concurrent connections (one thread each, up to
//       --max-connections; excess accepts get a `busy` response and
//       close), one shared thread-safe Engine, so named tenants persist
//       across client connections and clients on different tenants make
//       progress in parallel. Port 0 binds an ephemeral port; --port-file
//       publishes the bound port (written atomically) for drivers that
//       asked for one. Each connection auto-selects text or binary by its
//       first bytes. A `quit` from any client stops the server (all
//       connection threads are joined first). With --event-loop the same
//       contract is served by the epoll readiness loop (non-blocking
//       sockets, a small worker pool) instead of a thread per connection —
//       the mode for mostly-idle fleets past the practical thread count.
//   ingrass_serve --connect <port> [--script <file>]... [--text]
//   ingrass_serve --connect-port-file <path> [--script <file>]... [--text]
//       Client: read text commands (from each --script in order, or
//       stdin), send them over the socket — binary frames by default,
//       the text grammar with --text — and print the text-rendered
//       responses. Each script runs on its own connection, which is how
//       the smoke test demonstrates tenants outliving clients.
//
// Exit status: 0 on quit/EOF, 1 on usage errors, 2 on fatal runtime
// failures. Per-command failures print `err ...` and the session keeps
// serving.

#include <cstdio>
#include <exception>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "obs/log.hpp"
#include "obs/metrics_http.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "serve/protocol.hpp"
#include "serve/transport.hpp"
#include "serve/transport_detail.hpp"
#include "util/parse.hpp"

using namespace ingrass;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  ingrass_serve                                  text protocol on stdin/stdout\n"
      "  ingrass_serve --binary                         binary frames on stdin/stdout\n"
      "  ingrass_serve --listen <port> [--port-file <path>] [--max-connections <N>]\n"
      "                [--event-loop] [--shard-server]\n"
      "  ingrass_serve --connect <port> [--script <file>]... [--text]\n"
      "  ingrass_serve --connect-port-file <path> [--script <file>]... [--text]\n"
      "distributed serving:\n"
      "  --shard-server               host shard sub-sessions for a coordinator\n"
      "                               (enables the handshake/block-solve/...\n"
      "                               verbs; requires --listen)\n"
      "observability (any server mode):\n"
      "  --metrics-port <port>        Prometheus /metrics endpoint (0 = ephemeral)\n"
      "  --metrics-port-file <path>   publish the bound metrics port (atomic write)\n"
      "  --log-json <path>            append JSON-lines structured log events\n"
      "  --slow-ms <N>                log requests slower than N ms (0 = off)\n"
      "commands are read per connection; see docs/serve_protocol.md\n");
  return 1;
}

struct Args {
  bool stdio_binary = false;
  std::optional<long> listen_port;
  std::string port_file;
  std::optional<long> max_connections;
  bool event_loop = false;
  bool shard_server = false;
  std::optional<long> connect_port;
  std::string connect_port_file;
  std::vector<std::string> scripts;
  bool client_text = false;
  std::optional<long> metrics_port;
  std::string metrics_port_file;
  std::string log_json;
  std::optional<long> slow_ms;
};

std::optional<Args> parse_args(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> std::optional<std::string> {
      if (i + 1 >= argc) return std::nullopt;
      return std::string(argv[++i]);
    };
    auto port_value = [&]() -> std::optional<long> {
      const auto v = value();
      if (!v) return std::nullopt;
      const auto port = parse_full_long(*v);
      if (!port || *port < 0 || *port > 65535) return std::nullopt;
      return *port;
    };
    if (flag == "--binary") {
      a.stdio_binary = true;
    } else if (flag == "--listen") {
      a.listen_port = port_value();
      if (!a.listen_port) return std::nullopt;
    } else if (flag == "--port-file") {
      const auto v = value();
      if (!v) return std::nullopt;
      a.port_file = *v;
    } else if (flag == "--max-connections") {
      const auto v = value();
      if (!v) return std::nullopt;
      const auto n = parse_full_long(*v);
      if (!n || *n < 1 || *n > std::numeric_limits<int>::max()) return std::nullopt;
      a.max_connections = *n;
    } else if (flag == "--event-loop") {
      a.event_loop = true;
    } else if (flag == "--shard-server") {
      a.shard_server = true;
    } else if (flag == "--connect") {
      a.connect_port = port_value();
      if (!a.connect_port) return std::nullopt;
    } else if (flag == "--connect-port-file") {
      const auto v = value();
      if (!v) return std::nullopt;
      a.connect_port_file = *v;
    } else if (flag == "--script") {
      const auto v = value();
      if (!v) return std::nullopt;
      a.scripts.push_back(*v);
    } else if (flag == "--text") {
      a.client_text = true;
    } else if (flag == "--metrics-port") {
      a.metrics_port = port_value();
      if (!a.metrics_port) return std::nullopt;
    } else if (flag == "--metrics-port-file") {
      const auto v = value();
      if (!v) return std::nullopt;
      a.metrics_port_file = *v;
    } else if (flag == "--log-json") {
      const auto v = value();
      if (!v) return std::nullopt;
      a.log_json = *v;
    } else if (flag == "--slow-ms") {
      const auto v = value();
      if (!v) return std::nullopt;
      const auto n = parse_full_long(*v);
      if (!n || *n < 0) return std::nullopt;
      a.slow_ms = *n;
    } else {
      return std::nullopt;
    }
  }
  const bool client = a.connect_port || !a.connect_port_file.empty();
  const bool server_tcp = a.listen_port.has_value();
  // Mutually exclusive modes; client-only and server-only flags must not
  // leak across modes.
  if (client && server_tcp) return std::nullopt;
  if (client && a.stdio_binary) return std::nullopt;
  if (a.connect_port && !a.connect_port_file.empty()) return std::nullopt;
  if (server_tcp && a.stdio_binary) return std::nullopt;
  if (!server_tcp && !a.port_file.empty()) return std::nullopt;
  if (!server_tcp && a.max_connections) return std::nullopt;
  if (!server_tcp && a.event_loop) return std::nullopt;
  // Shard servers are fleet-internal: a coordinator dials them over TCP,
  // so the stdio modes have no use for the flag.
  if (!server_tcp && a.shard_server) return std::nullopt;
  if (!client && (a.client_text || !a.scripts.empty())) return std::nullopt;
  // Observability flags belong to server modes (stdio or TCP), and a
  // metrics port file is meaningless without a metrics listener.
  if (client && (a.metrics_port || !a.metrics_port_file.empty() ||
                 !a.log_json.empty() || a.slow_ms)) {
    return std::nullopt;
  }
  if (!a.metrics_port && !a.metrics_port_file.empty()) return std::nullopt;
  return a;
}

/// Drive one connection: text commands from `src`, requests over `wire`,
/// text-rendered responses on stdout. Returns true when the server said
/// Bye (the script quit).
bool drive_connection(serve::TcpClient& client, serve::Codec& wire,
                      serve::TextCodec& text, std::istream& src) {
  for (;;) {
    std::optional<serve::Request> request;
    try {
      request = text.read_request(src);
    } catch (const serve::ProtocolError& e) {
      // Local parse errors mirror the server's err lines, so scripted
      // sessions read the same whether the mistake dies here or there.
      std::cout << "err " << e.what() << "\n" << std::flush;
      continue;
    }
    if (!request) return false;
    wire.write_request(client.out(), *request);
    client.out().flush();
    const auto response = wire.read_response(client.in());
    if (!response) throw std::runtime_error("server closed the connection");
    text.write_response(std::cout, *response);
    std::cout.flush();
    if (std::holds_alternative<serve::resp::Bye>(*response)) return true;
  }
}

int run_client(const Args& a) {
  const auto port = static_cast<std::uint16_t>(
      a.connect_port ? *a.connect_port
                     : serve::wait_for_port_file(a.connect_port_file));
  serve::TextCodec text;
  serve::BinaryCodec binary;
  serve::Codec& wire = a.client_text ? static_cast<serve::Codec&>(text) : binary;
  if (a.scripts.empty()) {
    serve::TcpClient client(port);
    drive_connection(client, wire, text, std::cin);
    return 0;
  }
  for (const std::string& path : a.scripts) {
    std::ifstream src(path);
    if (!src) throw std::runtime_error("cannot open script: " + path);
    serve::TcpClient client(port);  // one connection per script
    if (drive_connection(client, wire, text, src)) break;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = parse_args(argc, argv);
  if (!args) return usage();
  try {
    if (args->connect_port || !args->connect_port_file.empty()) {
      return run_client(*args);
    }
    serve::EngineOptions eopts;
    eopts.shard_server = args->shard_server;
    serve::Engine engine(eopts);
    // Observability surfaces come up before the transport so the first
    // request is already scrapeable and loggable.
    if (!args->log_json.empty()) obs::log().open(args->log_json);
    if (args->slow_ms) {
      obs::set_slow_request_threshold_ns(
          static_cast<std::uint64_t>(*args->slow_ms) * 1000000ull);
    }
    std::unique_ptr<obs::MetricsHttpServer> metrics;
    if (args->metrics_port) {
      metrics = std::make_unique<obs::MetricsHttpServer>(
          obs::registry(), static_cast<std::uint16_t>(*args->metrics_port));
      if (!args->metrics_port_file.empty()) {
        serve::detail::write_port_file(args->metrics_port_file, metrics->port());
      }
    }
    if (args->listen_port) {
      serve::TcpOptions opts;
      opts.port = static_cast<std::uint16_t>(*args->listen_port);
      opts.port_file = args->port_file;
      if (args->max_connections) {
        opts.max_connections = static_cast<int>(*args->max_connections);
      }
      opts.event_loop = args->event_loop;
      serve_tcp(engine, opts);
      return 0;
    }
    serve::TextCodec text;
    serve::BinaryCodec binary;
    serve::Codec& codec =
        args->stdio_binary ? static_cast<serve::Codec&>(binary) : text;
    serve_stream(engine, codec, std::cin, std::cout);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fatal: %s\n", e.what());
    return 2;
  }
}
