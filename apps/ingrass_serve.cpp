// ingrass_serve — long-lived sparsifier sessions speaking a line protocol
// on stdin/stdout. The operational front-end to serve/session.hpp and
// serve/shard_dispatcher.hpp: open a graph (or restore a checkpoint),
// stream mixed insert/remove batches, solve against the maintained
// sparsifier-preconditioned system, inspect metrics, and checkpoint for
// restart — all without ever re-paying the setup phase in the foreground.
// The full request/response grammar, error lines, and a worked transcript
// live in docs/serve_protocol.md.
//
// Protocol (one command per line; one response per command, `ok ...` or
// `err <message>`; stdout is flushed after every response):
//
//   open <g.mtx> [--density f] [--target C] [--grass-target C]
//                [--staleness f] [--sync] [--no-rebuild]
//       Load a Matrix Market graph, build H(0) with GRASS at --density
//       (default 0.10), run the inGRASS setup with kappa budget --target
//       (default 100). --grass-target makes rebuilds (and H(0))
//       condition-targeted instead of density-targeted. --staleness sets
//       the rebuild trip point as a fraction of the budget (default 0.75).
//       --sync rebuilds inside apply instead of in the background;
//       --no-rebuild disables rebuilds entirely.
//   open-sharded <g.mtx> <K> [--partition hash|greedy] [same options]
//       Partition the graph across K sparsifier sessions behind the
//       shard dispatcher (default partition: greedy). Session options
//       apply to every shard.
//   restore <ckpt> [same options]
//       Resume a session from a v1 checkpoint file (no GRASS pass).
//   restore-sharded <manifest> [same options]
//       Resume a sharded session from a v2 manifest + its shard blobs.
//   insert <u> <v> <w>      stage an insertion into the pending batch
//   remove <u> <v>          stage a removal into the pending batch
//   apply                   apply the pending batch through the session
//                           (sharded: records route to their owning
//                           shards; cross-shard edges hit the boundary)
//   solve <u> <v>           flush pending, then solve L_G x = e_u - e_v;
//                           reports iterations, residual, and x[u]-x[v]
//                           (the effective resistance between u and v)
//   metrics                 flush pending, then report session metrics
//                           (sharded: aggregated, plus boundary stats)
//   shard-metrics <k>       sharded only: one shard's metrics
//   kappa                   flush pending, then measure kappa(L_G, L_H)
//                           against the budget (expensive; diagnostics —
//                           sharded: against the stitched sparsifier)
//   checkpoint <path>       flush pending, then write a binary checkpoint
//                           (sharded: v2 manifest + per-shard blobs)
//   quit                    flush pending and exit 0 (EOF does the same)
//
// Exit status: 0 on quit/EOF, 1 on usage errors (the program takes no
// arguments), 2 on fatal runtime failures. Per-command failures print
// `err ...` and the session keeps serving.

#include <cstdio>
#include <exception>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "graph/mtx_io.hpp"
#include "serve/session.hpp"
#include "serve/shard_dispatcher.hpp"
#include "util/parse.hpp"

using namespace ingrass;

namespace {

struct ServeState {
  // Exactly one of these is live after open/restore.
  std::unique_ptr<SparsifierSession> session;
  std::unique_ptr<ShardedSession> sharded;
  UpdateBatch pending;

  [[nodiscard]] bool open() const { return session || sharded; }
};

[[noreturn]] void protocol_error(const std::string& why) {
  throw std::runtime_error(why);
}

long parse_long(const std::string& tok, const char* what) {
  const auto v = parse_full_long(tok);
  if (!v) protocol_error(std::string("bad ") + what + ": '" + tok + "'");
  return *v;
}

double parse_double(const std::string& tok, const char* what) {
  const auto v = parse_full_double(tok);
  if (!v) protocol_error(std::string("bad ") + what + ": '" + tok + "'");
  return *v;
}

NodeId parse_node(const std::string& tok) {
  const long v = parse_long(tok, "node id");
  if (v < 0) protocol_error("node id must be non-negative");
  return static_cast<NodeId>(v);
}

/// Sharded-session options from the open/restore flag tail (args[from..]).
/// The plain-session options are the `session` member; `--partition` is
/// recognized only when `sharded` is true.
ShardedOptions parse_session_options(const std::vector<std::string>& args,
                                     std::size_t from, bool sharded) {
  ShardedOptions opts;
  opts.session.engine.target_condition = 100.0;
  double density = 0.10;
  std::optional<double> grass_target;
  for (std::size_t i = from; i < args.size(); ++i) {
    const std::string& flag = args[i];
    auto value = [&]() -> const std::string& {
      if (i + 1 >= args.size()) protocol_error("missing value for " + flag);
      return args[++i];
    };
    if (flag == "--density") {
      density = parse_double(value(), "--density");
    } else if (flag == "--target") {
      opts.session.engine.target_condition = parse_double(value(), "--target");
    } else if (flag == "--grass-target") {
      grass_target = parse_double(value(), "--grass-target");
    } else if (flag == "--staleness") {
      opts.session.rebuild_staleness_fraction = parse_double(value(), "--staleness");
    } else if (flag == "--sync") {
      opts.session.background_rebuild = false;
    } else if (flag == "--no-rebuild") {
      opts.session.enable_rebuild = false;
    } else if (sharded && flag == "--partition") {
      const std::string& v = value();
      if (v == "hash") {
        opts.partition = PartitionStrategy::kHash;
      } else if (v == "greedy") {
        opts.partition = PartitionStrategy::kGreedy;
      } else {
        protocol_error("bad --partition (want hash or greedy): '" + v + "'");
      }
    } else {
      protocol_error("unknown option: " + flag);
    }
  }
  opts.session.grass.target_offtree_density = density;
  if (grass_target) opts.session.grass.target_condition = *grass_target;
  return opts;
}

void require_open(const ServeState& st) {
  if (!st.open()) protocol_error("no session (use open or restore)");
}

NodeId node_count(const ServeState& st) {
  require_open(st);
  // Lock-free constant — insert/remove staging must not take the session
  // locks (num_nodes never changes after open).
  return st.session ? st.session->num_nodes() : st.sharded->num_nodes();
}

ApplyResult apply_batch(ServeState& st, const UpdateBatch& batch) {
  require_open(st);
  return st.session ? st.session->apply(batch) : st.sharded->apply(batch);
}

/// Apply the staged batch, if any. Commands that read state call this so
/// responses always reflect every staged record. The batch is taken out
/// *before* applying: if the apply fails, the bad batch is discarded with
/// the error instead of wedging every subsequent flushing command.
void flush(ServeState& st) {
  if (st.pending.empty()) return;
  const UpdateBatch batch = std::move(st.pending);
  st.pending = UpdateBatch{};
  apply_batch(st, batch);
}

void print_counters_tail(const SessionCounters& c, double staleness,
                         bool rebuild_in_flight) {
  std::printf(
      "batches=%llu inserts=%llu removals=%llu ghosts=%llu solves=%llu "
      "rebuilds=%llu rebuild_failures=%llu staleness=%.6g rebuild_in_flight=%d",
      static_cast<unsigned long long>(c.batches),
      static_cast<unsigned long long>(c.inserts_offered),
      static_cast<unsigned long long>(c.removals_applied),
      static_cast<unsigned long long>(c.removals_pending),
      static_cast<unsigned long long>(c.solves),
      static_cast<unsigned long long>(c.rebuilds),
      static_cast<unsigned long long>(c.rebuild_failures), staleness,
      rebuild_in_flight ? 1 : 0);
}

void respond_open(const ServeState& st, const char* verb) {
  if (st.session) {
    const SessionMetrics m = st.session->metrics();
    std::printf("ok %s nodes=%d g_edges=%lld h_edges=%lld target=%g batches=%llu\n",
                verb, m.nodes, static_cast<long long>(m.g_edges),
                static_cast<long long>(m.h_edges), m.target_condition,
                static_cast<unsigned long long>(m.counters.batches));
    return;
  }
  const ShardedMetrics m = st.sharded->metrics();
  std::printf(
      "ok %s nodes=%d g_edges=%lld h_edges=%lld shards=%d boundary_edges=%lld "
      "target=%g batches=%llu\n",
      verb, m.nodes, static_cast<long long>(m.g_edges),
      static_cast<long long>(m.h_edges), m.shards,
      static_cast<long long>(m.boundary_edges),
      st.sharded->options().session.engine.target_condition,
      static_cast<unsigned long long>(m.counters.batches));
}

/// Execute one command line. Returns false when the session should quit.
bool execute(ServeState& st, const std::vector<std::string>& args) {
  const std::string& cmd = args[0];
  if (cmd == "quit") {
    if (st.open()) flush(st);  // a throw discards the bad batch; the next
                               // quit (or EOF) still shuts down cleanly
    std::printf("ok quit\n");
    return false;
  }
  if (cmd == "open" || cmd == "restore") {
    if (args.size() < 2) protocol_error(cmd + " requires a path");
    const ShardedOptions opts = parse_session_options(args, 2, /*sharded=*/false);
    if (cmd == "open") {
      st.session =
          std::make_unique<SparsifierSession>(read_mtx_file(args[1]), opts.session);
    } else {
      st.session = SparsifierSession::restore(args[1], opts.session);
    }
    st.sharded.reset();
    st.pending = UpdateBatch{};
    respond_open(st, cmd.c_str());
  } else if (cmd == "open-sharded" || cmd == "restore-sharded") {
    const bool opening = cmd == "open-sharded";
    const std::size_t flags_from = opening ? 3 : 2;
    if (args.size() < flags_from) {
      protocol_error(opening ? "usage: open-sharded <g.mtx> <K> [options]"
                             : "usage: restore-sharded <manifest> [options]");
    }
    const ShardedOptions opts = parse_session_options(args, flags_from, true);
    if (opening) {
      const long shards = parse_long(args[2], "shard count");
      if (shards < 1) protocol_error("shard count must be >= 1");
      st.sharded = std::make_unique<ShardedSession>(
          read_mtx_file(args[1]), static_cast<int>(shards), opts);
    } else {
      st.sharded = ShardedSession::restore(args[1], opts);
    }
    st.session.reset();
    st.pending = UpdateBatch{};
    respond_open(st, cmd.c_str());
  } else if (cmd == "insert") {
    if (args.size() != 4) protocol_error("usage: insert <u> <v> <w>");
    const NodeId nodes = node_count(st);  // also fails w/o session
    Edge e;
    e.u = parse_node(args[1]);
    e.v = parse_node(args[2]);
    e.w = parse_double(args[3], "weight");
    if (e.u >= nodes || e.v >= nodes) protocol_error("node id exceeds graph size");
    if (!(e.w > 0.0)) protocol_error("weight must be positive");
    if (e.u == e.v) protocol_error("self-loop");
    if (e.u > e.v) std::swap(e.u, e.v);
    st.pending.inserts.push_back(e);
    std::printf("ok staged inserts=%zu removals=%zu\n", st.pending.inserts.size(),
                st.pending.removals.size());
  } else if (cmd == "remove") {
    if (args.size() != 3) protocol_error("usage: remove <u> <v>");
    const NodeId nodes = node_count(st);
    NodeId u = parse_node(args[1]);
    NodeId v = parse_node(args[2]);
    if (u >= nodes || v >= nodes) protocol_error("node id exceeds graph size");
    if (u == v) protocol_error("self-loop");
    if (u > v) std::swap(u, v);
    st.pending.removals.emplace_back(u, v);
    std::printf("ok staged inserts=%zu removals=%zu\n", st.pending.inserts.size(),
                st.pending.removals.size());
  } else if (cmd == "apply") {
    if (args.size() != 1) protocol_error("usage: apply");
    const UpdateBatch batch = std::move(st.pending);
    st.pending = UpdateBatch{};
    const ApplyResult r = apply_batch(st, batch);
    std::printf(
        "ok apply inserted=%lld merged=%lld redistributed=%lld reinforced=%lld "
        "removed=%lld ghost=%lld staleness=%.6g rebuild=%d\n",
        static_cast<long long>(r.stats.inserted), static_cast<long long>(r.stats.merged),
        static_cast<long long>(r.stats.redistributed),
        static_cast<long long>(r.stats.reinforced), static_cast<long long>(r.removed),
        static_cast<long long>(r.ghost_removals), r.staleness,
        r.rebuild_triggered ? 1 : 0);
  } else if (cmd == "solve") {
    if (args.size() != 3) protocol_error("usage: solve <u> <v>");
    flush(st);
    const NodeId nodes = node_count(st);
    const NodeId u = parse_node(args[1]);
    const NodeId v = parse_node(args[2]);
    if (u >= nodes || v >= nodes) protocol_error("node id exceeds graph size");
    if (u == v) protocol_error("solve endpoints must differ");
    std::vector<double> b(static_cast<std::size_t>(nodes), 0.0);
    std::vector<double> x(static_cast<std::size_t>(nodes), 0.0);
    b[static_cast<std::size_t>(u)] = 1.0;
    b[static_cast<std::size_t>(v)] = -1.0;
    const auto r = st.session ? st.session->solve(b, x) : st.sharded->solve(b, x);
    if (!r.converged) protocol_error("solve did not converge");
    std::printf("ok solve iters=%d resid=%.3g resistance=%.10g\n", r.outer_iterations,
                r.relative_residual,
                x[static_cast<std::size_t>(u)] - x[static_cast<std::size_t>(v)]);
  } else if (cmd == "metrics") {
    if (args.size() != 1) protocol_error("usage: metrics");
    flush(st);
    if (st.session) {
      const SessionMetrics m = st.session->metrics();
      std::printf("ok metrics nodes=%d g_edges=%lld h_edges=%lld ", m.nodes,
                  static_cast<long long>(m.g_edges), static_cast<long long>(m.h_edges));
      print_counters_tail(m.counters, m.staleness, m.rebuild_in_flight);
      std::printf("\n");
    } else {
      require_open(st);
      const ShardedMetrics m = st.sharded->metrics();
      std::printf(
          "ok metrics nodes=%d g_edges=%lld h_edges=%lld shards=%d "
          "boundary_edges=%lld boundary_weight=%.6g global_solves=%llu "
          "coupling_updates=%llu ",
          m.nodes, static_cast<long long>(m.g_edges), static_cast<long long>(m.h_edges),
          m.shards, static_cast<long long>(m.boundary_edges), m.boundary_weight,
          static_cast<unsigned long long>(m.global_solves),
          static_cast<unsigned long long>(m.coupling_updates));
      print_counters_tail(m.counters, m.staleness, m.rebuild_in_flight);
      std::printf("\n");
    }
  } else if (cmd == "shard-metrics") {
    if (args.size() != 2) protocol_error("usage: shard-metrics <k>");
    flush(st);
    require_open(st);
    if (!st.sharded) protocol_error("shard-metrics requires a sharded session");
    const long k = parse_long(args[1], "shard index");
    if (k < 0 || k >= st.sharded->num_shards()) protocol_error("shard index out of range");
    const SessionMetrics m = st.sharded->shard_metrics(static_cast<int>(k));
    std::printf("ok shard-metrics shard=%ld nodes=%d g_edges=%lld h_edges=%lld ", k,
                m.nodes, static_cast<long long>(m.g_edges),
                static_cast<long long>(m.h_edges));
    print_counters_tail(m.counters, m.staleness, m.rebuild_in_flight);
    std::printf("\n");
  } else if (cmd == "kappa") {
    if (args.size() != 1) protocol_error("usage: kappa");
    flush(st);
    require_open(st);
    double kappa = 0.0;
    double target = 0.0;
    if (st.session) {
      st.session->wait_for_rebuild();  // measure the settled pair
      kappa = st.session->measure_kappa();
      target = st.session->options().engine.target_condition;
    } else {
      st.sharded->wait_for_rebuilds();
      kappa = st.sharded->measure_kappa();
      target = st.sharded->options().session.engine.target_condition;
    }
    std::printf("ok kappa value=%.4g target=%g within=%d\n", kappa, target,
                kappa <= target ? 1 : 0);
  } else if (cmd == "checkpoint") {
    if (args.size() != 2) protocol_error("usage: checkpoint <path>");
    flush(st);
    require_open(st);
    if (st.session) {
      st.session->checkpoint(args[1]);
    } else {
      st.sharded->checkpoint(args[1]);
    }
    std::printf("ok checkpoint path=%s\n", args[1].c_str());
  } else {
    protocol_error("unknown command: " + cmd);
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 1) {
    std::fprintf(stderr,
                 "usage: %s  (no arguments; commands on stdin — see "
                 "docs/serve_protocol.md)\n",
                 argv[0]);
    return 1;
  }
  try {
    ServeState st;
    std::string line;
    while (std::getline(std::cin, line)) {
      const auto hash = line.find('#');
      if (hash != std::string::npos) line.erase(hash);
      std::istringstream ss(line);
      std::vector<std::string> args;
      for (std::string tok; ss >> tok;) args.push_back(std::move(tok));
      if (args.empty()) continue;
      bool keep_going = true;
      try {
        keep_going = execute(st, args);
      } catch (const std::exception& e) {
        std::printf("err %s\n", e.what());
      }
      std::fflush(stdout);
      if (!keep_going) return 0;
    }
    if (st.open()) {
      // EOF without `quit`: flushing a bad staged batch must not turn a
      // clean shutdown into a fatal exit.
      try {
        flush(st);
      } catch (const std::exception& e) {
        std::printf("err %s\n", e.what());
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fatal: %s\n", e.what());
    return 2;
  }
}
