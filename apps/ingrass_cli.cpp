// ingrass_cli — command-line front end for the library.
//
// Subcommands:
//   info <g.mtx>                            graph statistics
//   sparsify <g.mtx> <out.mtx> [density]    GRASS pass (default 10% off-tree)
//   kappa <g.mtx> <h.mtx>                   relative condition number
//   update <g.mtx> <h.mtx> <edges.txt> <out.mtx> [targetC]
//       incremental inGRASS update: edges.txt holds "u v w" per line
//       (0-based node ids); the updated sparsifier is written to out.mtx.
//
// Exit status 0 on success, 1 on usage errors, 2 on runtime failures.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/ingrass.hpp"
#include "graph/components.hpp"
#include "graph/mtx_io.hpp"
#include "graph/ops.hpp"
#include "sparsify/density.hpp"
#include "sparsify/grass.hpp"
#include "spectral/condition_number.hpp"
#include "util/timer.hpp"

using namespace ingrass;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  ingrass_cli info <g.mtx>\n"
               "  ingrass_cli sparsify <g.mtx> <out.mtx> [offtree-density]\n"
               "  ingrass_cli kappa <g.mtx> <h.mtx>\n"
               "  ingrass_cli update <g.mtx> <h.mtx> <edges.txt> <out.mtx> [targetC]\n");
  return 1;
}

std::vector<Edge> read_edge_list(const std::string& path, NodeId num_nodes) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open edge list: " + path);
  std::vector<Edge> edges;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream row(line);
    std::int64_t u = 0, v = 0;
    double w = 1.0;
    if (!(row >> u >> v)) throw std::runtime_error("bad edge line: " + line);
    row >> w;  // optional weight
    if (u < 0 || v < 0 || u >= num_nodes || v >= num_nodes || u == v || w <= 0) {
      throw std::runtime_error("invalid edge: " + line);
    }
    Edge e;
    e.u = static_cast<NodeId>(std::min(u, v));
    e.v = static_cast<NodeId>(std::max(u, v));
    e.w = w;
    edges.push_back(e);
  }
  return edges;
}

int cmd_info(const std::string& path) {
  const Graph g = read_mtx_file(path);
  const DegreeStats deg = degree_stats(g);
  std::printf("nodes:            %d\n", g.num_nodes());
  std::printf("edges:            %lld\n", static_cast<long long>(g.num_edges()));
  std::printf("connected:        %s\n", is_connected(g) ? "yes" : "no");
  std::printf("degree min/mean/max: %d / %.2f / %d\n", deg.min, deg.mean, deg.max);
  std::printf("total weight:     %.6g\n", g.total_weight());
  std::printf("off-tree density: %.2f%%\n", 100.0 * offtree_density(g));
  return 0;
}

int cmd_sparsify(const std::string& in, const std::string& out, double density) {
  const Graph g = read_mtx_file(in);
  Timer t;
  GrassOptions opts;
  opts.target_offtree_density = density;
  const GrassResult r = grass_sparsify(g, opts);
  std::printf("sparsified %d nodes in %s: kept %lld of %lld edges (%.1f%% off-tree)\n",
              g.num_nodes(), format_seconds(t.seconds()).c_str(),
              static_cast<long long>(r.sparsifier.num_edges()),
              static_cast<long long>(g.num_edges()),
              100.0 * offtree_density(r.sparsifier));
  write_mtx_file(out, r.sparsifier);
  return 0;
}

int cmd_kappa(const std::string& gpath, const std::string& hpath) {
  const Graph g = read_mtx_file(gpath);
  const Graph h = read_mtx_file(hpath);
  const ConditionNumberResult r = relative_condition_number(g, h);
  std::printf("kappa(L_G, L_H) = %.3f  (lambda_max %.4f, lambda_min %.4f)\n",
              r.kappa, r.lambda_max, r.lambda_min);
  return 0;
}

int cmd_update(const std::string& gpath, const std::string& hpath,
               const std::string& epath, const std::string& out, double target) {
  Graph g = read_mtx_file(gpath);
  Graph h = read_mtx_file(hpath);
  if (g.num_nodes() != h.num_nodes()) {
    throw std::runtime_error("graph and sparsifier node counts differ");
  }
  const std::vector<Edge> batch = read_edge_list(epath, g.num_nodes());

  Ingrass::Options opts;
  opts.target_condition =
      target > 0 ? target : condition_number(g, h);
  Ingrass ing(std::move(h), opts);
  std::printf("setup: %s (%d levels, filtering level %d, target C = %.1f)\n",
              format_seconds(ing.setup_seconds()).c_str(), ing.num_levels(),
              ing.filtering_level(), opts.target_condition);

  for (const Edge& e : batch) g.add_or_merge_edge(e.u, e.v, e.w);
  const auto stats = ing.insert_edges(batch);
  std::printf("update: %zu edges in %s — %lld inserted, %lld merged, %lld redistributed\n",
              batch.size(), format_seconds(stats.seconds).c_str(),
              static_cast<long long>(stats.inserted),
              static_cast<long long>(stats.merged),
              static_cast<long long>(stats.redistributed));
  std::printf("kappa after update: %.1f; off-tree density %.1f%%\n",
              condition_number(g, ing.sparsifier()),
              100.0 * offtree_density(ing.sparsifier()));
  write_mtx_file(out, ing.sparsifier());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "info" && argc == 3) return cmd_info(argv[2]);
    if (cmd == "sparsify" && (argc == 4 || argc == 5)) {
      return cmd_sparsify(argv[2], argv[3], argc == 5 ? std::atof(argv[4]) : 0.10);
    }
    if (cmd == "kappa" && argc == 4) return cmd_kappa(argv[2], argv[3]);
    if (cmd == "update" && (argc == 6 || argc == 7)) {
      return cmd_update(argv[2], argv[3], argv[4], argv[5],
                        argc == 7 ? std::atof(argv[6]) : 0.0);
    }
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "error: %s\n", ex.what());
    return 2;
  }
  return usage();
}
